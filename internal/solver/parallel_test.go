package solver

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"fpga3d/internal/bench"
	"fpga3d/internal/core"
	"fpga3d/internal/model"
)

// fakeProbe builds a probeFunc over a synthetic monotone predicate:
// values >= threshold are feasible, smaller ones infeasible. Each call
// burns a little wall time so cancellation actually races, and honors
// ctx like the real solveOPP (returning a "canceled" result, nil error).
func fakeProbe(threshold int, delay time.Duration, calls *atomic.Int64) probeFunc {
	return func(ctx context.Context, v int) (*OPPResult, error) {
		calls.Add(1)
		select {
		case <-ctx.Done():
			return &OPPResult{Decision: Unknown, DecidedBy: "canceled"}, nil
		case <-time.After(delay):
		}
		r := &OPPResult{DecidedBy: "search"}
		r.Stats.Nodes = 1
		if v >= threshold {
			r.Decision = Feasible
			r.Placement = &model.Placement{X: []int{v}} // value-tagged witness
		} else {
			r.Decision = Infeasible
		}
		return r, nil
	}
}

func TestRaceAscendingFindsThreshold(t *testing.T) {
	for _, workers := range []int{1, 2, 4, 8} {
		for _, threshold := range []int{3, 7, 15, 20} {
			var calls atomic.Int64
			probe := fakeProbe(threshold, time.Millisecond, &calls)
			merged := 0
			d, v, res, err := raceAscending(context.Background(), workers, 3, 20, probe,
				func(int, *OPPResult) { merged++ })
			if err != nil {
				t.Fatalf("workers=%d threshold=%d: %v", workers, threshold, err)
			}
			if d != Feasible || v != threshold {
				t.Fatalf("workers=%d threshold=%d: got %v at %d", workers, threshold, d, v)
			}
			if res == nil || res.Placement.X[0] != threshold {
				t.Fatalf("workers=%d threshold=%d: witness from wrong probe: %+v", workers, threshold, res)
			}
			if int64(merged) != calls.Load() {
				t.Fatalf("workers=%d threshold=%d: %d probes launched but %d merged",
					workers, threshold, calls.Load(), merged)
			}
		}
	}
}

func TestRaceAscendingInfeasibleRange(t *testing.T) {
	var calls atomic.Int64
	probe := fakeProbe(100, time.Millisecond, &calls)
	d, _, _, err := raceAscending(context.Background(), 4, 3, 20, probe, func(int, *OPPResult) {})
	if err != nil || d != Infeasible {
		t.Fatalf("got %v, %v; want infeasible", d, err)
	}
}

func TestRaceAscendingParentCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var calls atomic.Int64
	probe := fakeProbe(100, time.Millisecond, &calls)
	_, _, _, err := raceAscending(ctx, 4, 3, 20, probe, func(int, *OPPResult) {})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestRaceBinaryFindsThreshold(t *testing.T) {
	for _, workers := range []int{1, 2, 4, 8} {
		for _, threshold := range []int{3, 7, 19, 20} {
			var calls atomic.Int64
			probe := fakeProbe(threshold, time.Millisecond, &calls)
			merged := 0
			d, v, res, err := raceBinary(context.Background(), workers, 3, 20, probe,
				func(int, *OPPResult) { merged++ })
			if err != nil {
				t.Fatalf("workers=%d threshold=%d: %v", workers, threshold, err)
			}
			if d != Feasible || v != threshold {
				t.Fatalf("workers=%d threshold=%d: got %v at %d", workers, threshold, d, v)
			}
			// The witness is nil exactly when hi itself is optimal (the
			// caller's pre-existing upper-bound witness stands).
			if threshold < 20 && (res == nil || res.Placement.X[0] != threshold) {
				t.Fatalf("workers=%d threshold=%d: witness from wrong probe: %+v", workers, threshold, res)
			}
			if int64(merged) != calls.Load() {
				t.Fatalf("workers=%d threshold=%d: %d probes launched but %d merged",
					workers, threshold, calls.Load(), merged)
			}
		}
	}
}

func TestBisectPoints(t *testing.T) {
	running := map[int]context.CancelFunc{}
	pts := bisectPoints(3, 20, running, 3)
	if len(pts) != 3 || pts[0] != 11 {
		t.Fatalf("bisectPoints = %v, want midpoint 11 first and 3 points", pts)
	}
	seen := map[int]bool{}
	for _, p := range pts {
		if p < 3 || p >= 20 || seen[p] {
			t.Fatalf("bisectPoints produced out-of-range or duplicate value %d in %v", p, pts)
		}
		seen[p] = true
	}
	// In-flight values are skipped.
	running[11] = func() {}
	for _, p := range bisectPoints(3, 20, running, 3) {
		if p == 11 {
			t.Fatalf("bisectPoints re-proposed in-flight value 11: %v", pts)
		}
	}
}

// searchOnly forces every decision through the branch-and-bound so the
// parallel paths race real engine work.
func searchOnly(workers int) Options {
	return Options{Workers: workers, SkipBounds: true, SkipHeuristic: true}
}

func TestMinBaseParallelParity(t *testing.T) {
	in := bench.DE()
	for _, T := range []int{6, 13, 14} {
		seq, err := MinBase(in, T, searchOnly(1))
		if err != nil {
			t.Fatal(err)
		}
		par, err := MinBase(in, T, searchOnly(8))
		if err != nil {
			t.Fatal(err)
		}
		if seq.Decision != par.Decision || seq.Value != par.Value {
			t.Fatalf("T=%d: sequential (%v, %d) vs parallel (%v, %d)",
				T, seq.Decision, seq.Value, par.Decision, par.Value)
		}
		if !placementsEqual(seq.Placement, par.Placement) {
			t.Fatalf("T=%d: witness placements differ", T)
		}
	}
}

func TestMinTimeParallelParity(t *testing.T) {
	in := bench.DE()
	seq, err := MinTime(in, 32, 32, searchOnly(1))
	if err != nil {
		t.Fatal(err)
	}
	par, err := MinTime(in, 32, 32, searchOnly(8))
	if err != nil {
		t.Fatal(err)
	}
	if seq.Decision != par.Decision || seq.Value != par.Value {
		t.Fatalf("sequential (%v, %d) vs parallel (%v, %d)",
			seq.Decision, seq.Value, par.Decision, par.Value)
	}
	if !placementsEqual(seq.Placement, par.Placement) {
		t.Fatalf("witness placements differ")
	}
}

func TestParetoParallelParity(t *testing.T) {
	in := bench.DE()
	seq, err := ParetoFront(in, searchOnly(1))
	if err != nil {
		t.Fatal(err)
	}
	par, err := ParetoFront(in, searchOnly(8))
	if err != nil {
		t.Fatal(err)
	}
	if len(seq.Points) != len(par.Points) {
		t.Fatalf("front sizes differ: %d vs %d", len(seq.Points), len(par.Points))
	}
	for i := range seq.Points {
		if seq.Points[i] != par.Points[i] {
			t.Fatalf("point %d differs: %+v vs %+v", i, seq.Points[i], par.Points[i])
		}
	}
}

func placementsEqual(a, b *model.Placement) bool {
	if (a == nil) != (b == nil) {
		return false
	}
	if a == nil {
		return true
	}
	eq := func(x, y []int) bool {
		if len(x) != len(y) {
			return false
		}
		for i := range x {
			if x[i] != y[i] {
				return false
			}
		}
		return true
	}
	return eq(a.X, b.X) && eq(a.Y, b.Y) && eq(a.S, b.S)
}

// TestCancellationPromptness starts a search that would run for minutes
// (video codec with bounds and heuristic disabled) and checks that a
// short context deadline cuts it off within a generous margin, with the
// partial statistics preserved.
func TestCancellationPromptness(t *testing.T) {
	in := bench.VideoCodec()
	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	start := time.Now()
	r, err := SolveOPPCtx(ctx, in, model.Container{W: 64, H: 64, T: 59},
		Options{SkipBounds: true, SkipHeuristic: true})
	elapsed := time.Since(start)
	if err != nil {
		t.Fatal(err)
	}
	if r.Decision != Unknown || r.DecidedBy != "canceled" {
		t.Fatalf("got (%v, %q), want (unknown, canceled)", r.Decision, r.DecidedBy)
	}
	if r.Stats.Nodes == 0 {
		t.Fatal("canceled search reported no partial effort")
	}
	if elapsed > 5*time.Second {
		t.Fatalf("cancellation took %v, want prompt return", elapsed)
	}
}

// TestMinBaseCtxCanceledReturnsPartial checks the driver-level contract:
// a canceled optimization returns ctx.Err() together with the partial
// aggregate rather than swallowing it.
func TestMinBaseCtxCanceledReturnsPartial(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, workers := range []int{1, 8} {
		res, err := MinBaseCtx(ctx, bench.DE(), 6, searchOnly(workers))
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("workers=%d: err = %v, want context.Canceled", workers, err)
		}
		if res == nil || res.Decision != Unknown {
			t.Fatalf("workers=%d: partial result = %+v", workers, res)
		}
	}
}

// TestCoreSolveCanceled checks the engine-level status for a context
// that dies before and during the search.
func TestCoreSolveCanceled(t *testing.T) {
	in := bench.DE()
	order, err := in.Order()
	if err != nil {
		t.Fatal(err)
	}
	prob := buildProblem(in, model.Container{W: 32, H: 32, T: 6}, order, nil)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	r := core.Solve(prob, Options{}.searchOptions(ctx))
	if r.Status != core.StatusCanceled {
		t.Fatalf("status = %v, want canceled", r.Status)
	}
}
