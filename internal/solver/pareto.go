package solver

import (
	"context"
	"fmt"
	"time"

	"fpga3d/internal/core"
	"fpga3d/internal/model"
)

// ParetoPoint is one point of the (execution time, chip side) trade-off
// curve of Figure 7: at time budget T, the minimal square chip is H×H.
type ParetoPoint struct {
	T int
	H int
}

// ParetoResult is the full trade-off curve plus bookkeeping.
type ParetoResult struct {
	// Points holds the Pareto-optimal (T, h) pairs, ascending in T and
	// strictly descending in h.
	Points []ParetoPoint
	// Curve holds the minimal h for every probed T (including dominated
	// points), for plotting the staircase.
	Curve  []ParetoPoint
	Probes int
	// Stats and Stages accumulate engine effort over every probe of
	// the sweep.
	Stats   core.Stats
	Stages  StageTimings
	Elapsed time.Duration
}

// ParetoFront computes the Pareto-optimal (time, chip size) pairs for
// the instance: for each feasible time budget starting at the critical
// path, the minimal square chip side, stopping once the chip can no
// longer shrink (it has reached the largest single module).
//
// For the unconstrained curve of Figure 7(b), pass in.WithoutPrec().
func ParetoFront(in *model.Instance, opt Options) (*ParetoResult, error) {
	return ParetoFrontCtx(context.Background(), in, opt)
}

// ParetoFrontCtx is ParetoFront under a context. The T-walk is
// inherently sequential (each point's chip bound seeds the next), but
// each BMP ascent inside it races its h-probes on Options.Workers
// goroutines; cancellation aborts the walk promptly and returns the
// partial curve together with ctx.Err().
func ParetoFrontCtx(ctx context.Context, in *model.Instance, opt Options) (*ParetoResult, error) {
	if err := in.Validate(); err != nil {
		return nil, err
	}
	order, err := in.Order()
	if err != nil {
		return nil, err
	}
	opt, err = opt.withRun()
	if err != nil {
		return nil, err
	}
	start := time.Now()
	res := &ParetoResult{}
	opt.Trace.Emit("solve_start", map[string]any{
		"mode": "pareto", "instance": in.Name, "n": in.N(),
	})

	hFloor := in.MaxW()
	if h := in.MaxH(); h > hFloor {
		hFloor = h
	}
	tMin := order.CriticalPath()
	tCap := tMin + in.TotalDuration() // every instance serializes by then

	prevH := -1
	for T := tMin; T <= tCap; T++ {
		r, err := minBase(ctx, in, T, order, opt)
		if r != nil {
			res.Probes += r.Probes
			res.Stats.Add(r.Stats)
			res.Stages.Add(r.Stages)
		}
		if err != nil {
			res.Elapsed = time.Since(start)
			return res, err
		}
		if r.Decision != Feasible {
			return nil, fmt.Errorf("solver: pareto probe at T=%d undecided", T)
		}
		res.Curve = append(res.Curve, ParetoPoint{T: T, H: r.Value})
		if prevH == -1 || r.Value < prevH {
			res.Points = append(res.Points, ParetoPoint{T: T, H: r.Value})
			prevH = r.Value
			opt.Trace.Emit("pareto_point", map[string]any{"T": T, "h": r.Value})
		}
		if r.Value == hFloor {
			break
		}
	}
	res.Elapsed = time.Since(start)
	if opt.Trace != nil {
		opt.Trace.Emit("solve_end", map[string]any{
			"mode":       "pareto",
			"decision":   Feasible.String(),
			"points":     len(res.Points),
			"probes":     res.Probes,
			"nodes":      res.Stats.Nodes,
			"elapsed_ms": ms(res.Elapsed),
			"stages_ms":  stagesMS(res.Stages),
			"stats":      res.Stats,
		})
	}
	return res, nil
}
