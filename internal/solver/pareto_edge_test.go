package solver

import (
	"context"
	"errors"
	"strings"
	"testing"

	"fpga3d/internal/model"
	"fpga3d/internal/obs"
)

// cancelOnEvent is a trace sink that cancels a context the first time a
// line containing marker is emitted, turning trace events into
// deterministic cancellation points for the tests below.
type cancelOnEvent struct {
	marker string
	cancel context.CancelFunc
}

func (w *cancelOnEvent) Write(p []byte) (int, error) {
	if strings.Contains(string(p), w.marker) {
		w.cancel()
	}
	return len(p), nil
}

// TestParetoEmptyFrontierOnPreCanceled pins the walk's behavior when
// the context is dead before the first probe: a non-nil partial result
// with an empty frontier and the context's error, not a panic and not a
// fabricated point.
func TestParetoEmptyFrontierOnPreCanceled(t *testing.T) {
	in := &model.Instance{
		Name:  "pareto-empty",
		Tasks: []model.Task{{W: 2, H: 1, Dur: 1}, {W: 1, H: 2, Dur: 2}},
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	r, err := ParetoFrontCtx(ctx, in, Options{Workers: 1})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if r == nil {
		t.Fatal("want a partial result alongside the error")
	}
	if len(r.Points) != 0 || len(r.Curve) != 0 {
		t.Fatalf("canceled-before-start walk produced points: %+v / curve %+v", r.Points, r.Curve)
	}
}

// TestParetoSinglePointFrontier covers the degenerate curve: when the
// very first time budget already reaches the largest-module floor, the
// walk must stop after one point instead of probing the serialized
// horizon.
func TestParetoSinglePointFrontier(t *testing.T) {
	in := &model.Instance{
		Name:  "pareto-single",
		Tasks: []model.Task{{W: 3, H: 2, Dur: 2}},
	}
	r, err := ParetoFront(in, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Points) != 1 || len(r.Curve) != 1 {
		t.Fatalf("points %+v curve %+v, want exactly one of each", r.Points, r.Curve)
	}
	if p := r.Points[0]; p.T != 2 || p.H != 3 {
		t.Fatalf("point %+v, want {T:2 H:3} (critical path, largest side)", p)
	}
}

// TestParetoCancellationMidWalk cancels the context right after the
// first frontier point is traced and requires a partial curve plus the
// context error: the walk must surface what it established before the
// deadline rather than discard it.
func TestParetoCancellationMidWalk(t *testing.T) {
	// Five independent 2×2 unit blocks: the full frontier has several
	// points (h = 6, 4, … down to 2), so a cancel after the first leaves
	// a genuinely partial curve.
	in := &model.Instance{
		Name: "pareto-cancel",
		Tasks: []model.Task{
			{W: 2, H: 2, Dur: 1}, {W: 2, H: 2, Dur: 1}, {W: 2, H: 2, Dur: 1},
			{W: 2, H: 2, Dur: 1}, {W: 2, H: 2, Dur: 1},
		},
	}
	full, err := ParetoFront(in, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(full.Points) < 2 {
		t.Fatalf("instance unsuitable: full frontier %+v has fewer than 2 points", full.Points)
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	r, err := ParetoFrontCtx(ctx, in, Options{
		Workers: 1,
		Trace:   obs.NewTracer(&cancelOnEvent{marker: "pareto_point", cancel: cancel}),
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if r == nil {
		t.Fatal("want the partial result alongside the error")
	}
	if len(r.Points) == 0 || len(r.Points) >= len(full.Points) {
		t.Fatalf("partial frontier has %d points, want between 1 and %d", len(r.Points), len(full.Points)-1)
	}
	if r.Probes == 0 {
		t.Fatal("partial result lost its probe accounting")
	}
}
