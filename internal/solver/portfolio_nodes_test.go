package solver

import (
	"testing"

	"fpga3d/internal/bench"
	"fpga3d/internal/model"
)

// TestPortfolioNeverIncreasesNodesOnPaperInstances pins the portfolio
// guarantee on the paper's benchmark instances: incumbent sharing and
// witness tightening only ever remove probes from a sweep, so the total
// exact-search node count of a sequential MinTime run must never exceed
// the staged strategy's. On these instances the per-probe bounds are
// strong enough that the counts coincide exactly (the one search-active
// probe sits at ub−1, which both strategies visit); the inequality is
// what the strategy layer promises, the equality is what the instances
// deliver.
func TestPortfolioNeverIncreasesNodesOnPaperInstances(t *testing.T) {
	cases := []struct {
		name string
		in   func() *model.Instance
		w, h int
	}{
		{"de/33x16", bench.DE, 33, 16},
		{"de/32x24", bench.DE, 32, 24},
		{"codec/86x64", func() *model.Instance { return bench.VideoCodec().WithoutPrec() }, 86, 64},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			in := tc.in()
			st, err := MinTime(in, tc.w, tc.h, Options{Workers: 1})
			if err != nil {
				t.Fatal(err)
			}
			pf, err := MinTime(in, tc.w, tc.h, Options{Workers: 1, Strategy: "portfolio"})
			if err != nil {
				t.Fatal(err)
			}
			if st.Decision != Feasible || pf.Decision != st.Decision || pf.Value != st.Value {
				t.Fatalf("answers diverged: staged %v/%d, portfolio %v/%d",
					st.Decision, st.Value, pf.Decision, pf.Value)
			}
			if pf.Stats.Nodes > st.Stats.Nodes {
				t.Errorf("portfolio spent %d exact-search nodes, staged %d — portfolio must never cost more",
					pf.Stats.Nodes, st.Stats.Nodes)
			}
			t.Logf("%s: T=%d staged nodes=%d probes=%d, portfolio nodes=%d probes=%d",
				tc.name, st.Value, st.Stats.Nodes, st.Probes, pf.Stats.Nodes, pf.Probes)
		})
	}
}

// TestPortfolioPrunesMultiChipDE is the acceptance demonstration for
// incumbent sharing: multi-chip probes are pure exact search (no bounds
// or heuristic stage), so the portfolio sweep's witness-makespan
// tightening must produce a strict node drop on the DE instance, not
// just the no-worse guarantee. The numbers are recorded in
// EXPERIMENTS.md ("Portfolio versus staged").
func TestPortfolioPrunesMultiChipDE(t *testing.T) {
	de := bench.DE()
	cases := []struct{ w, h, k int }{
		{33, 16, 2},
		{16, 16, 3},
	}
	for _, tc := range cases {
		st, err := MinTimeMultiChip(de, tc.w, tc.h, tc.k, Options{Workers: 1})
		if err != nil {
			t.Fatal(err)
		}
		pf, err := MinTimeMultiChip(de, tc.w, tc.h, tc.k, Options{Workers: 1, Strategy: "portfolio"})
		if err != nil {
			t.Fatal(err)
		}
		if st.Decision != Feasible || pf.Decision != Feasible || st.MinTime != pf.MinTime {
			t.Fatalf("%dx%d k=%d: answers diverged: staged %v T=%d, portfolio %v T=%d",
				tc.w, tc.h, tc.k, st.Decision, st.MinTime, pf.Decision, pf.MinTime)
		}
		if pf.Stats.Nodes >= st.Stats.Nodes {
			t.Errorf("%dx%d k=%d: portfolio nodes=%d not below staged nodes=%d",
				tc.w, tc.h, tc.k, pf.Stats.Nodes, st.Stats.Nodes)
		}
		t.Logf("de %dx%d k=%d: T=%d staged nodes=%d probes=%d, portfolio nodes=%d probes=%d",
			tc.w, tc.h, tc.k, st.MinTime, st.Stats.Nodes, st.Probes, pf.Stats.Nodes, pf.Probes)
	}
}
