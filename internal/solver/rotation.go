package solver

import (
	"context"
	"fmt"
	"math/bits"

	"fpga3d/internal/model"
)

// Rotation support is an extension beyond the paper, which treats module
// footprints as fixed. A 90° rotation swaps a module's w and h; the
// solver enumerates orientation assignments (only modules with w ≠ h
// have a meaningful choice) and decides each with the packing-class
// engine, preferring assignments with few rotations. Exactness is
// preserved: the instance is feasible with rotations allowed iff some
// assignment is feasible.

// maxRotatable bounds the number of non-square modules; beyond it the
// 2^k enumeration is refused rather than silently truncated.
const maxRotatable = 16

// RotationResult extends OPPResult with the chosen orientation.
type RotationResult struct {
	OPPResult
	// Rotations[i] reports whether task i is rotated in the witness
	// placement (meaningful only for feasible results).
	Rotations []bool
	// Oriented is the instance with the witness orientations applied;
	// Placement refers to its footprints.
	Oriented *model.Instance
}

// SolveOPPWithRotation decides feasibility when every module may be
// rotated by 90°.
func SolveOPPWithRotation(in *model.Instance, c model.Container, opt Options) (*RotationResult, error) {
	return SolveOPPWithRotationCtx(context.Background(), in, c, opt)
}

// SolveOPPWithRotationCtx is SolveOPPWithRotation under a context. Once
// ctx is done the mask enumeration stops and the aggregate comes back
// with Decision Unknown and DecidedBy "canceled" (nil error), matching
// SolveOPPCtx.
func SolveOPPWithRotationCtx(ctx context.Context, in *model.Instance, c model.Container, opt Options) (*RotationResult, error) {
	if err := in.Validate(); err != nil {
		return nil, err
	}
	var rotatable []int
	for i, t := range in.Tasks {
		if t.W != t.H {
			rotatable = append(rotatable, i)
		}
	}
	if len(rotatable) > maxRotatable {
		return nil, fmt.Errorf("solver: %d rotatable modules exceed the rotation limit %d",
			len(rotatable), maxRotatable)
	}

	// Enumerate masks by increasing popcount so unrotated layouts are
	// preferred and reported first.
	masks := make([]uint32, 0, 1<<len(rotatable))
	for m := uint32(0); m < 1<<uint(len(rotatable)); m++ {
		masks = append(masks, m)
	}
	for i := 1; i < len(masks); i++ {
		for j := i; j > 0 && bits.OnesCount32(masks[j]) < bits.OnesCount32(masks[j-1]); j-- {
			masks[j], masks[j-1] = masks[j-1], masks[j]
		}
	}

	out := &RotationResult{}
	out.Decision = Infeasible
	for _, m := range masks {
		cand := in.Clone()
		rot := make([]bool, in.N())
		for bit, task := range rotatable {
			if m&(1<<uint(bit)) != 0 {
				cand.Tasks[task].W, cand.Tasks[task].H = cand.Tasks[task].H, cand.Tasks[task].W
				rot[task] = true
			}
		}
		r, err := SolveOPPCtx(ctx, cand, c, opt)
		if err != nil {
			return nil, err
		}
		out.Stats.Add(r.Stats)
		out.Stages.Add(r.Stages)
		out.Elapsed += r.Elapsed
		switch r.Decision {
		case Feasible:
			out.Decision = Feasible
			out.Placement = r.Placement
			out.DecidedBy = r.DecidedBy
			out.Rotations = rot
			out.Oriented = cand
			return out, nil
		case Unknown:
			out.Decision = Unknown // cannot prove overall infeasibility
			if r.DecidedBy == "canceled" {
				// Every remaining mask would be canceled too.
				out.DecidedBy = "canceled"
				return out, nil
			}
		}
	}
	return out, nil
}

// MinBaseWithRotation finds the smallest square chip side for time
// budget T when modules may rotate. Feasibility is monotone in the chip
// side (the same orientation assignment still fits), so a linear ascent
// from the rotation-aware lower bound is exact.
func MinBaseWithRotation(in *model.Instance, T int, opt Options) (*OptResult, []bool, error) {
	if err := in.Validate(); err != nil {
		return nil, nil, err
	}
	order, err := in.Order()
	if err != nil {
		return nil, nil, err
	}
	res := &OptResult{}
	if order.CriticalPath() > T {
		res.Decision = Infeasible
		return res, nil, nil
	}
	// With rotation the per-module floor is min(w,h)… but both extents
	// must fit, so the floor is max over modules of min(w, h).
	lb := 1
	hMax := 0
	for _, t := range in.Tasks {
		lo, hi := t.W, t.H
		if lo > hi {
			lo, hi = hi, lo
		}
		if lo > lb {
			lb = lo
		}
		hMax += hi
	}
	vol := in.Volume()
	for lb*lb*T < vol {
		lb++
	}
	res.LowerBound = lb
	for h := lb; h <= hMax; h++ {
		r, err := SolveOPPWithRotation(in, model.Container{W: h, H: h, T: T}, opt)
		if err != nil {
			return nil, nil, err
		}
		res.Probes++
		res.Stats.Add(r.Stats)
		res.Stages.Add(r.Stages)
		switch r.Decision {
		case Feasible:
			res.Decision = Feasible
			res.Value = h
			res.Placement = r.Placement
			return res, r.Rotations, nil
		case Unknown:
			res.Decision = Unknown
			return res, nil, nil
		}
	}
	return nil, nil, fmt.Errorf("solver: no feasible chip up to %d with rotation", hMax)
}
