package solver

import (
	"math/rand"
	"testing"
	"time"

	"fpga3d/internal/bench"
	"fpga3d/internal/model"
)

func TestRotationEnablesPlacement(t *testing.T) {
	// Two concurrent 1×4 modules on a 4×2 chip: without rotation a 1×4
	// module does not even fit (h = 4 > 2); rotating both to 4×1 stacks
	// them.
	in := &model.Instance{
		Tasks: []model.Task{{W: 1, H: 4, Dur: 1}, {W: 1, H: 4, Dur: 1}},
	}
	c := model.Container{W: 4, H: 2, T: 1}
	plain, err := SolveOPP(in, c, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if plain.Decision != Infeasible {
		t.Fatalf("unrotated: %v, want infeasible", plain.Decision)
	}
	rot, err := SolveOPPWithRotation(in, c, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rot.Decision != Feasible {
		t.Fatalf("rotated: %v, want feasible", rot.Decision)
	}
	if !rot.Rotations[0] || !rot.Rotations[1] {
		t.Fatalf("rotations = %v, want both", rot.Rotations)
	}
	if err := rot.Placement.Verify(rot.Oriented, c, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRotationPrefersUnrotated(t *testing.T) {
	// A single 2×3 module in a 3×3 chip fits both ways; the solver must
	// report the unrotated witness first.
	in := &model.Instance{Tasks: []model.Task{{W: 2, H: 3, Dur: 1}}}
	r, err := SolveOPPWithRotation(in, model.Container{W: 3, H: 3, T: 1}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if r.Decision != Feasible || r.Rotations[0] {
		t.Fatalf("decision %v rotations %v", r.Decision, r.Rotations)
	}
}

func TestRotationInfeasibleEitherWay(t *testing.T) {
	in := &model.Instance{Tasks: []model.Task{{W: 2, H: 5, Dur: 1}}}
	r, err := SolveOPPWithRotation(in, model.Container{W: 4, H: 4, T: 1}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if r.Decision != Infeasible {
		t.Fatalf("decision %v", r.Decision)
	}
}

func TestRotationSquareModulesSkipEnumeration(t *testing.T) {
	// All-square instances have exactly one orientation assignment.
	de := bench.DE() // multipliers are square; ALUs are 16×1 — 5 rotatable
	r, err := SolveOPPWithRotation(de, model.Container{W: 32, H: 32, T: 6}, Options{TimeLimit: 60 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if r.Decision != Feasible {
		t.Fatalf("decision %v", r.Decision)
	}
	// The paper's fixed-orientation optimum is already feasible, so no
	// rotations are needed.
	for i, rot := range r.Rotations {
		if rot {
			t.Fatalf("task %d rotated unnecessarily", i)
		}
	}
}

func TestMinBaseWithRotation(t *testing.T) {
	// Three concurrent 1×4 strips: side by side they need a 3×4
	// footprint, rotated they stack as three 4×1 rows — either way the
	// minimal square chip is 4, and the rotation-aware optimizer must
	// agree with the fixed-orientation one.
	in := &model.Instance{
		Tasks: []model.Task{{W: 1, H: 4, Dur: 2}, {W: 1, H: 4, Dur: 2}, {W: 1, H: 4, Dur: 2}},
	}
	r, rots, err := MinBaseWithRotation(in, 2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Three 1×4 strips side by side: 3×4 footprint → square side 4.
	if r.Decision != Feasible || r.Value != 4 {
		t.Fatalf("h = %d (%v), want 4", r.Value, r.Decision)
	}
	if len(rots) != 3 {
		t.Fatalf("rotations = %v", rots)
	}
	// Compare against the unrotated optimizer: same value here.
	plain, err := MinBase(in, 2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if plain.Value != 4 {
		t.Fatalf("plain h = %d", plain.Value)
	}
}

func TestMinBaseWithRotationImproves(t *testing.T) {
	// A case where rotation strictly helps: three 1×5 strips plus one
	// 5×1 strip, all concurrent (T=1). With fixed orientations the mix
	// of tall and flat strips forces a 6×6 chip; rotating everything
	// into the same orientation packs four parallel strips into 5×5.
	in := &model.Instance{
		Tasks: []model.Task{{W: 1, H: 5, Dur: 1}, {W: 1, H: 5, Dur: 1}, {W: 1, H: 5, Dur: 1}, {W: 5, H: 1, Dur: 1}},
	}
	plain, err := MinBase(in, 1, Options{})
	if err != nil {
		t.Fatal(err)
	}
	rot, _, err := MinBaseWithRotation(in, 1, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rot.Value > plain.Value {
		t.Fatalf("rotation made things worse: %d > %d", rot.Value, plain.Value)
	}
	if plain.Value != 6 || rot.Value != 5 {
		t.Fatalf("plain %d (want 6), rotated %d (want 5)", plain.Value, rot.Value)
	}
}

func TestRotationBelowCriticalPath(t *testing.T) {
	in := &model.Instance{
		Tasks: []model.Task{{W: 1, H: 2, Dur: 2}, {W: 1, H: 2, Dur: 2}},
		Prec:  []model.Arc{{From: 0, To: 1}},
	}
	r, _, err := MinBaseWithRotation(in, 3, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if r.Decision != Infeasible {
		t.Fatalf("decision %v", r.Decision)
	}
}

func TestRotationTooManyRotatable(t *testing.T) {
	in := &model.Instance{}
	for i := 0; i < maxRotatable+1; i++ {
		in.Tasks = append(in.Tasks, model.Task{W: 1, H: 2, Dur: 1})
	}
	if _, err := SolveOPPWithRotation(in, model.Container{W: 10, H: 10, T: 100}, Options{}); err == nil {
		t.Fatal("rotation explosion not refused")
	}
}

// TestRotationOracle: rotation results agree with brute-forcing the
// orientation assignments through the plain solver.
func TestRotationOracle(t *testing.T) {
	opt := Options{TimeLimit: 20 * time.Second}
	for seed := int64(0); seed < 200; seed++ {
		rng := rand.New(rand.NewSource(seed))
		in := bench.Random(rng, 2+rng.Intn(2), 3, 2, 0.3)
		c := model.Container{W: 3, H: 3, T: 3}
		// Reference: enumerate all orientations through SolveOPP.
		var rotatable []int
		for i, task := range in.Tasks {
			if task.W != task.H {
				rotatable = append(rotatable, i)
			}
		}
		want := false
		for m := 0; m < 1<<len(rotatable) && !want; m++ {
			cand := in.Clone()
			for bit, idx := range rotatable {
				if m&(1<<bit) != 0 {
					cand.Tasks[idx].W, cand.Tasks[idx].H = cand.Tasks[idx].H, cand.Tasks[idx].W
				}
			}
			if !c.Fits(cand) {
				continue
			}
			r, err := SolveOPP(cand, c, opt)
			if err != nil {
				t.Fatal(err)
			}
			if r.Decision == Feasible {
				want = true
			}
		}
		got, err := SolveOPPWithRotation(in, c, opt)
		if err != nil {
			t.Fatal(err)
		}
		if (got.Decision == Feasible) != want {
			t.Fatalf("seed %d: rotation solver %v, brute force %v", seed, got.Decision, want)
		}
	}
}

func TestMinTimeWithRotation(t *testing.T) {
	// Two chained 1×4 modules on a 4×2 chip: only the rotated (4×1)
	// orientation fits, and the chain then needs 2 cycles.
	in := &model.Instance{
		Tasks: []model.Task{{W: 1, H: 4, Dur: 1}, {W: 1, H: 4, Dur: 1}},
		Prec:  []model.Arc{{From: 0, To: 1}},
	}
	r, rots, err := MinTimeWithRotation(in, 4, 2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if r.Decision != Feasible || r.Value != 2 {
		t.Fatalf("T = %d (%v), want 2", r.Value, r.Decision)
	}
	if !rots[0] || !rots[1] {
		t.Fatalf("rotations = %v", rots)
	}
	// A module that fits in no orientation.
	bad := &model.Instance{Tasks: []model.Task{{W: 3, H: 5, Dur: 1}}}
	rb, _, err := MinTimeWithRotation(bad, 4, 4, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rb.Decision != Infeasible {
		t.Fatalf("misfit: %v", rb.Decision)
	}
	// On the DE benchmark rotation cannot beat the fixed-orientation
	// optimum of 6 (the critical path).
	de := bench.DE()
	rde, _, err := MinTimeWithRotation(de, 32, 32, Options{TimeLimit: 120 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if rde.Decision != Feasible || rde.Value != 6 {
		t.Fatalf("DE with rotation: T=%d (%v), want 6", rde.Value, rde.Decision)
	}
}
