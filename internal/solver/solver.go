// Package solver orchestrates the paper's three-stage framework
// (Section 3.1) around the packing-class engine:
//
//  1. try to disprove feasibility with fast lower bounds,
//  2. try to find a feasible packing with a fast heuristic,
//  3. only then run the branch-and-bound search over packing classes.
//
// On top of the OPP decision procedure it provides the optimization
// drivers of the paper: MinT&FindS (strip packing / minimal makespan),
// MinA&FindS (base minimization / minimal square chip), the FixedS
// variants with prescribed start times, and the Pareto front of
// (chip size, execution time) trade-offs shown in Figure 7.
package solver

import (
	"context"
	"fmt"
	"runtime"
	"time"

	"fpga3d/internal/bounds"
	"fpga3d/internal/core"
	"fpga3d/internal/heur"
	"fpga3d/internal/model"
	"fpga3d/internal/obs"
)

// Decision is the three-valued outcome of a decision problem.
type Decision int

const (
	// Unknown means the solver hit a node or time limit.
	Unknown Decision = iota
	// Feasible means a placement was found (and verified).
	Feasible
	// Infeasible means no placement exists.
	Infeasible
)

func (d Decision) String() string {
	switch d {
	case Feasible:
		return "feasible"
	case Infeasible:
		return "infeasible"
	default:
		return "unknown"
	}
}

// Options configures the solver. The zero value enables every stage and
// rule with no search limits.
type Options struct {
	// NodeLimit bounds the branch-and-bound nodes per OPP call
	// (0 = unlimited).
	NodeLimit int64
	// TimeLimit bounds the wall time per OPP call (0 = unlimited).
	TimeLimit time.Duration

	// Workers bounds the number of OPP decisions the optimization
	// drivers (MinTime, MinBase, ParetoFront and their Ctx variants)
	// may race concurrently. The per-container decisions of a sweep are
	// independent certificates, so they parallelize without changing
	// the answer: the optimum, and the witness placement at the
	// optimum, are bit-identical to the sequential sweep (the lowest
	// container wins ties, exactly as in the sequential ascent).
	//
	// 0 (the zero value) means runtime.GOMAXPROCS(0); 1 forces the
	// sequential sweep; negative values are treated as 1. Single OPP
	// decisions (SolveOPP, FeasibleFixedSchedule) are unaffected.
	Workers int

	// SkipBounds disables stage 1 (lower bounds).
	SkipBounds bool
	// SkipHeuristic disables stage 2 (the greedy placer).
	SkipHeuristic bool

	// DisableC4Rule, DisableHoleRule, DisableCliqueRule,
	// DisableCliqueForce and DisableOrientRules are forwarded to the
	// engine (ablations).
	DisableC4Rule      bool
	DisableHoleRule    bool
	DisableCliqueRule  bool
	DisableCliqueForce bool
	DisableOrientRules bool
	// TimeDisjointFirst flips the engine's value ordering on the time
	// axis to try Disjoint before Overlap.
	TimeDisjointFirst bool
	// ReferenceRules runs the engine on its pre-optimization reference
	// rule implementations (see core.Options.ReferenceRules). Results
	// are bit-identical to the default fast paths, only slower; the
	// knob exists for differential testing and for cmd/fpgabench's
	// -compare-ref speedup measurement.
	ReferenceRules bool

	// Progress, when non-nil, receives live snapshots: one at every
	// stage transition and one per 256 branch-and-bound nodes during
	// the search. Shared across all OPP calls of an optimization run.
	Progress obs.ProgressFunc
	// Trace, when non-nil, receives structured JSONL events (solve
	// start/end, stage transitions, per-probe outcomes, incumbents,
	// final stats) so a whole run can be replayed and analyzed offline.
	Trace *obs.Tracer
	// Metrics, when non-nil, accumulates counters and gauges across
	// OPP calls (opp.calls, opp.feasible, opp.decided_by.*,
	// search.nodes, …). Safe to share between concurrent solves.
	Metrics *obs.Registry
}

// effectiveWorkers resolves Options.Workers to a concrete pool size.
func (o Options) effectiveWorkers() int {
	switch {
	case o.Workers == 0:
		return runtime.GOMAXPROCS(0)
	case o.Workers < 1:
		return 1
	default:
		return o.Workers
	}
}

func (o Options) coreOptions(ctx context.Context) core.Options {
	c := core.Options{
		Ctx:                ctx,
		NodeLimit:          o.NodeLimit,
		Progress:           o.Progress,
		DisableC4Rule:      o.DisableC4Rule,
		DisableHoleRule:    o.DisableHoleRule,
		DisableCliqueRule:  o.DisableCliqueRule,
		DisableCliqueForce: o.DisableCliqueForce,
		DisableOrientRules: o.DisableOrientRules,
		TimeOverlapFirst:   !o.TimeDisjointFirst,
		ReferenceRules:     o.ReferenceRules,
	}
	if o.TimeLimit > 0 {
		c.Deadline = time.Now().Add(o.TimeLimit)
	}
	return c
}

// searchOptions builds the engine options for stage 3. With a tracer
// or metrics registry attached it chains onto the progress hook, so
// the node-cadence snapshots (one per 256 nodes) also land in the
// JSONL record as "progress" events and keep the live gauges of the
// -metrics endpoint current while a search is still running.
func (o Options) searchOptions(ctx context.Context) core.Options {
	c := o.coreOptions(ctx)
	if o.Trace == nil && o.Metrics == nil {
		return c
	}
	prev := c.Progress
	tr, reg := o.Trace, o.Metrics
	c.Progress = func(s obs.Snapshot) {
		if tr != nil {
			tr.Emit("progress", map[string]any{
				"phase": s.Phase, "nodes": s.Nodes, "max_depth": s.MaxDepth,
				"nodes_per_sec": s.NodesPerSec, "conflicts": s.TotalConflicts(),
			})
		}
		reg.Gauge(obs.MetricSearchLiveNodes).Set(s.Nodes)
		reg.Gauge(obs.MetricSearchLiveDepth).Set(int64(s.MaxDepth))
		if prev != nil {
			prev(s)
		}
	}
	return c
}

// notifyPhase delivers a stage-transition snapshot to the Progress
// hook, so live tickers can show which stage a solve is in even before
// the first node-cadence snapshot arrives.
func (o Options) notifyPhase(phase string) {
	if o.Progress != nil {
		o.Progress(obs.Snapshot{Phase: phase})
	}
}

// StageTimings records the wall-clock time one OPP call (or, summed,
// a whole optimization run) spent in each stage of the three-stage
// framework of Section 3.1.
type StageTimings struct {
	Bounds    time.Duration `json:"bounds"`
	Heuristic time.Duration `json:"heuristic"`
	Search    time.Duration `json:"search"`
}

// Add accumulates o into s.
func (s *StageTimings) Add(o StageTimings) {
	s.Bounds += o.Bounds
	s.Heuristic += o.Heuristic
	s.Search += o.Search
}

func (s StageTimings) String() string {
	return fmt.Sprintf("bounds %v · heuristic %v · search %v",
		s.Bounds.Round(time.Microsecond),
		s.Heuristic.Round(time.Microsecond),
		s.Search.Round(time.Microsecond))
}

// ms converts a duration to fractional milliseconds for trace fields.
func ms(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

// stagesMS renders stage timings as a trace/JSON field.
func stagesMS(s StageTimings) map[string]float64 {
	return map[string]float64{
		"bounds":    ms(s.Bounds),
		"heuristic": ms(s.Heuristic),
		"search":    ms(s.Search),
	}
}

// OPPResult is the outcome of one orthogonal packing decision.
type OPPResult struct {
	Decision  Decision
	Placement *model.Placement // non-nil iff Decision == Feasible
	// DecidedBy names the stage that settled the question:
	// "bound: <name>", "heuristic", or "search".
	DecidedBy string
	Stats     core.Stats
	// Stages breaks Elapsed down into per-stage wall-clock durations.
	Stages  StageTimings
	Elapsed time.Duration
}

// SolveOPP decides whether the instance fits into container c while
// satisfying its precedence constraints (problem FeasAT&FindS).
// To solve the unconstrained variant, pass in.WithoutPrec().
func SolveOPP(in *model.Instance, c model.Container, opt Options) (*OPPResult, error) {
	return SolveOPPCtx(context.Background(), in, c, opt)
}

// SolveOPPCtx is SolveOPP under a context: the search polls ctx on its
// node cadence and, once ctx is done, returns promptly with Decision
// Unknown, DecidedBy "canceled" and the partial statistics gathered so
// far. The error stays nil — a canceled probe is an answered question
// ("no longer needed"), not a failure; callers that need the
// distinction check ctx.Err themselves.
func SolveOPPCtx(ctx context.Context, in *model.Instance, c model.Container, opt Options) (*OPPResult, error) {
	if err := in.Validate(); err != nil {
		return nil, err
	}
	order, err := in.Order()
	if err != nil {
		return nil, err
	}
	return solveOPP(ctx, in, c, order, opt)
}

func solveOPP(ctx context.Context, in *model.Instance, c model.Container, order *model.Order, opt Options) (*OPPResult, error) {
	start := time.Now()
	res := &OPPResult{}
	opt.Metrics.Counter("opp.calls").Inc()
	opt.Trace.Emit("opp_start", map[string]any{
		"instance": in.Name, "n": in.N(), "W": c.W, "H": c.H, "T": c.T,
	})

	// A probe whose context is already dead spends no effort at all;
	// the racing drivers rely on this to discard queued probes cheaply,
	// and CLI deadlines rely on it to cut off between probes.
	if ctx.Err() != nil {
		res.Decision = Unknown
		res.DecidedBy = "canceled"
		res.Elapsed = time.Since(start)
		opt.Metrics.Counter("opp.decided_by.canceled").Inc()
		opt.traceOPPEnd(res, nil)
		return res, nil
	}

	// Stage 1: lower bounds.
	if !opt.SkipBounds {
		opt.notifyPhase(obs.PhaseBounds)
		s0 := time.Now()
		bad, why := bounds.OPPInfeasible(in, c, order)
		res.Stages.Bounds = time.Since(s0)
		if bad {
			res.Decision = Infeasible
			res.DecidedBy = "bound: " + why
			res.Elapsed = time.Since(start)
			opt.Metrics.Counter("opp.decided_by.bounds").Inc()
			opt.traceOPPEnd(res, map[string]any{"bound": why})
			return res, nil
		}
		opt.Trace.Emit("stage", map[string]any{
			"phase": obs.PhaseBounds, "outcome": "pass", "elapsed_ms": ms(res.Stages.Bounds),
		})
	}
	// Stage 2: greedy placer.
	if !opt.SkipHeuristic {
		opt.notifyPhase(obs.PhaseHeuristic)
		s0 := time.Now()
		p, ok := heur.Place(in, c, order)
		res.Stages.Heuristic = time.Since(s0)
		if ok {
			if err := p.Verify(in, c, order); err != nil {
				return nil, fmt.Errorf("solver: heuristic produced invalid placement: %w", err)
			}
			res.Decision = Feasible
			res.Placement = p
			res.DecidedBy = "heuristic"
			res.Elapsed = time.Since(start)
			opt.Metrics.Counter("opp.decided_by.heuristic").Inc()
			opt.traceOPPEnd(res, nil)
			return res, nil
		}
		opt.Trace.Emit("stage", map[string]any{
			"phase": obs.PhaseHeuristic, "outcome": "miss", "elapsed_ms": ms(res.Stages.Heuristic),
		})
	}
	// Stage 3: packing-class branch and bound.
	opt.notifyPhase(obs.PhaseSearch)
	opt.Trace.Emit("stage", map[string]any{"phase": obs.PhaseSearch})
	s0 := time.Now()
	prob := buildProblem(in, c, order, nil)
	r := core.Solve(prob, opt.searchOptions(ctx))
	res.Stages.Search = time.Since(s0)
	res.Stats = r.Stats
	res.Elapsed = time.Since(start)
	opt.Metrics.Counter(obs.MetricSearchNodes).Add(r.Stats.Nodes)
	opt.Metrics.Counter(obs.MetricSearchPropagations).Add(r.Stats.Propagations)
	switch r.Status {
	case core.StatusFeasible:
		p := solutionToPlacement(r.Solution)
		if err := p.Verify(in, c, order); err != nil {
			return nil, fmt.Errorf("solver: search produced invalid placement: %w", err)
		}
		res.Decision = Feasible
		res.Placement = p
		res.DecidedBy = "search"
		opt.Metrics.Counter("opp.decided_by.search").Inc()
	case core.StatusInfeasible:
		res.Decision = Infeasible
		res.DecidedBy = "search"
		opt.Metrics.Counter("opp.decided_by.search").Inc()
	case core.StatusCanceled:
		res.Decision = Unknown
		res.DecidedBy = "canceled"
		opt.Metrics.Counter("opp.decided_by.canceled").Inc()
	default:
		res.Decision = Unknown
		res.DecidedBy = "limit"
		opt.Metrics.Counter("opp.decided_by.limit").Inc()
	}
	opt.traceOPPEnd(res, nil)
	return res, nil
}

// traceOPPEnd records the outcome of one OPP call: an opp_end trace
// event (with full engine stats when the search ran) and the
// per-decision metric counter.
func (o Options) traceOPPEnd(res *OPPResult, extra map[string]any) {
	o.Metrics.Counter("opp." + res.Decision.String()).Inc()
	if o.Trace == nil {
		return
	}
	f := map[string]any{
		"decision":   res.Decision.String(),
		"decided_by": res.DecidedBy,
		"nodes":      res.Stats.Nodes,
		"elapsed_ms": ms(res.Elapsed),
		"stages_ms":  stagesMS(res.Stages),
	}
	if res.DecidedBy == "search" || res.DecidedBy == "limit" {
		f["stats"] = res.Stats
	}
	for k, v := range extra {
		f[k] = v
	}
	o.Trace.Emit("opp_end", f)
}

// buildProblem translates an instance+container into the engine's
// three-dimensional problem. fixedStarts, when non-nil, freezes the time
// dimension according to the given schedule (the FixedS variants).
func buildProblem(in *model.Instance, c model.Container, order *model.Order, fixedStarts []int) *core.Problem {
	n := in.N()
	ws := make([]int, n)
	hs := make([]int, n)
	ds := make([]int, n)
	for i, t := range in.Tasks {
		ws[i], hs[i], ds[i] = t.W, t.H, t.Dur
	}
	p := &core.Problem{
		N: n,
		Dims: []core.Dim{
			{Cap: c.W, Sizes: ws},
			{Cap: c.H, Sizes: hs},
			{Cap: c.T, Sizes: ds, Ordered: true},
		},
	}
	const timeDim = 2
	if fixedStarts != nil {
		for u := 0; u < n; u++ {
			for v := u + 1; v < n; v++ {
				su, eu := fixedStarts[u], fixedStarts[u]+in.Tasks[u].Dur
				sv, ev := fixedStarts[v], fixedStarts[v]+in.Tasks[v].Dur
				if su < ev && sv < eu {
					p.Fixed = append(p.Fixed, core.FixedEdge{Dim: timeDim, U: u, V: v, State: core.Overlap})
				} else if eu <= sv {
					p.Seeds = append(p.Seeds, core.SeedArc{Dim: timeDim, From: u, To: v})
				} else {
					p.Seeds = append(p.Seeds, core.SeedArc{Dim: timeDim, From: v, To: u})
				}
			}
		}
		return p
	}
	cl := order.Closure()
	for u := 0; u < n; u++ {
		uu := u
		cl.Out(uu).ForEach(func(v int) {
			p.Seeds = append(p.Seeds, core.SeedArc{Dim: timeDim, From: uu, To: v})
		})
	}
	return p
}

func solutionToPlacement(s *core.Solution) *model.Placement {
	return &model.Placement{
		X: append([]int(nil), s.Coords[0]...),
		Y: append([]int(nil), s.Coords[1]...),
		S: append([]int(nil), s.Coords[2]...),
	}
}
