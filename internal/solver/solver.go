// Package solver orchestrates the paper's three-stage framework
// (Section 3.1) around the packing-class engine:
//
//  1. try to disprove feasibility with fast lower bounds,
//  2. try to find a feasible packing with a fast heuristic,
//  3. only then run the branch-and-bound search over packing classes.
//
// On top of the OPP decision procedure it provides the optimization
// drivers of the paper: MinT&FindS (strip packing / minimal makespan),
// MinA&FindS (base minimization / minimal square chip), the FixedS
// variants with prescribed start times, and the Pareto front of
// (chip size, execution time) trade-offs shown in Figure 7.
package solver

import (
	"fmt"
	"time"

	"fpga3d/internal/bounds"
	"fpga3d/internal/core"
	"fpga3d/internal/heur"
	"fpga3d/internal/model"
)

// Decision is the three-valued outcome of a decision problem.
type Decision int

const (
	// Unknown means the solver hit a node or time limit.
	Unknown Decision = iota
	// Feasible means a placement was found (and verified).
	Feasible
	// Infeasible means no placement exists.
	Infeasible
)

func (d Decision) String() string {
	switch d {
	case Feasible:
		return "feasible"
	case Infeasible:
		return "infeasible"
	default:
		return "unknown"
	}
}

// Options configures the solver. The zero value enables every stage and
// rule with no search limits.
type Options struct {
	// NodeLimit bounds the branch-and-bound nodes per OPP call
	// (0 = unlimited).
	NodeLimit int64
	// TimeLimit bounds the wall time per OPP call (0 = unlimited).
	TimeLimit time.Duration

	// SkipBounds disables stage 1 (lower bounds).
	SkipBounds bool
	// SkipHeuristic disables stage 2 (the greedy placer).
	SkipHeuristic bool

	// DisableC4Rule, DisableHoleRule, DisableCliqueRule,
	// DisableCliqueForce and DisableOrientRules are forwarded to the
	// engine (ablations).
	DisableC4Rule      bool
	DisableHoleRule    bool
	DisableCliqueRule  bool
	DisableCliqueForce bool
	DisableOrientRules bool
	// TimeDisjointFirst flips the engine's value ordering on the time
	// axis to try Disjoint before Overlap.
	TimeDisjointFirst bool
}

func (o Options) coreOptions() core.Options {
	c := core.Options{
		NodeLimit:          o.NodeLimit,
		DisableC4Rule:      o.DisableC4Rule,
		DisableHoleRule:    o.DisableHoleRule,
		DisableCliqueRule:  o.DisableCliqueRule,
		DisableCliqueForce: o.DisableCliqueForce,
		DisableOrientRules: o.DisableOrientRules,
		TimeOverlapFirst:   !o.TimeDisjointFirst,
	}
	if o.TimeLimit > 0 {
		c.Deadline = time.Now().Add(o.TimeLimit)
	}
	return c
}

// OPPResult is the outcome of one orthogonal packing decision.
type OPPResult struct {
	Decision  Decision
	Placement *model.Placement // non-nil iff Decision == Feasible
	// DecidedBy names the stage that settled the question:
	// "bound: <name>", "heuristic", or "search".
	DecidedBy string
	Stats     core.Stats
	Elapsed   time.Duration
}

// SolveOPP decides whether the instance fits into container c while
// satisfying its precedence constraints (problem FeasAT&FindS).
// To solve the unconstrained variant, pass in.WithoutPrec().
func SolveOPP(in *model.Instance, c model.Container, opt Options) (*OPPResult, error) {
	if err := in.Validate(); err != nil {
		return nil, err
	}
	order, err := in.Order()
	if err != nil {
		return nil, err
	}
	return solveOPP(in, c, order, opt)
}

func solveOPP(in *model.Instance, c model.Container, order *model.Order, opt Options) (*OPPResult, error) {
	start := time.Now()
	res := &OPPResult{}

	// Stage 1: lower bounds.
	if !opt.SkipBounds {
		if bad, why := bounds.OPPInfeasible(in, c, order); bad {
			res.Decision = Infeasible
			res.DecidedBy = "bound: " + why
			res.Elapsed = time.Since(start)
			return res, nil
		}
	}
	// Stage 2: greedy placer.
	if !opt.SkipHeuristic {
		if p, ok := heur.Place(in, c, order); ok {
			if err := p.Verify(in, c, order); err != nil {
				return nil, fmt.Errorf("solver: heuristic produced invalid placement: %w", err)
			}
			res.Decision = Feasible
			res.Placement = p
			res.DecidedBy = "heuristic"
			res.Elapsed = time.Since(start)
			return res, nil
		}
	}
	// Stage 3: packing-class branch and bound.
	prob := buildProblem(in, c, order, nil)
	r := core.Solve(prob, opt.coreOptions())
	res.Stats = r.Stats
	res.Elapsed = time.Since(start)
	switch r.Status {
	case core.StatusFeasible:
		p := solutionToPlacement(r.Solution)
		if err := p.Verify(in, c, order); err != nil {
			return nil, fmt.Errorf("solver: search produced invalid placement: %w", err)
		}
		res.Decision = Feasible
		res.Placement = p
		res.DecidedBy = "search"
	case core.StatusInfeasible:
		res.Decision = Infeasible
		res.DecidedBy = "search"
	default:
		res.Decision = Unknown
		res.DecidedBy = "limit"
	}
	return res, nil
}

// buildProblem translates an instance+container into the engine's
// three-dimensional problem. fixedStarts, when non-nil, freezes the time
// dimension according to the given schedule (the FixedS variants).
func buildProblem(in *model.Instance, c model.Container, order *model.Order, fixedStarts []int) *core.Problem {
	n := in.N()
	ws := make([]int, n)
	hs := make([]int, n)
	ds := make([]int, n)
	for i, t := range in.Tasks {
		ws[i], hs[i], ds[i] = t.W, t.H, t.Dur
	}
	p := &core.Problem{
		N: n,
		Dims: []core.Dim{
			{Cap: c.W, Sizes: ws},
			{Cap: c.H, Sizes: hs},
			{Cap: c.T, Sizes: ds, Ordered: true},
		},
	}
	const timeDim = 2
	if fixedStarts != nil {
		for u := 0; u < n; u++ {
			for v := u + 1; v < n; v++ {
				su, eu := fixedStarts[u], fixedStarts[u]+in.Tasks[u].Dur
				sv, ev := fixedStarts[v], fixedStarts[v]+in.Tasks[v].Dur
				if su < ev && sv < eu {
					p.Fixed = append(p.Fixed, core.FixedEdge{Dim: timeDim, U: u, V: v, State: core.Overlap})
				} else if eu <= sv {
					p.Seeds = append(p.Seeds, core.SeedArc{Dim: timeDim, From: u, To: v})
				} else {
					p.Seeds = append(p.Seeds, core.SeedArc{Dim: timeDim, From: v, To: u})
				}
			}
		}
		return p
	}
	cl := order.Closure()
	for u := 0; u < n; u++ {
		uu := u
		cl.Out(uu).ForEach(func(v int) {
			p.Seeds = append(p.Seeds, core.SeedArc{Dim: timeDim, From: uu, To: v})
		})
	}
	return p
}

func solutionToPlacement(s *core.Solution) *model.Placement {
	return &model.Placement{
		X: append([]int(nil), s.Coords[0]...),
		Y: append([]int(nil), s.Coords[1]...),
		S: append([]int(nil), s.Coords[2]...),
	}
}
