// Package solver orchestrates the paper's three-stage framework
// (Section 3.1) around the packing-class engine:
//
//  1. try to disprove feasibility with fast lower bounds,
//  2. try to find a feasible packing with a fast heuristic,
//  3. only then run the branch-and-bound search over packing classes.
//
// On top of the OPP decision procedure it provides the optimization
// drivers of the paper: MinT&FindS (strip packing / minimal makespan),
// MinA&FindS (base minimization / minimal square chip), the FixedS
// variants with prescribed start times, and the Pareto front of
// (chip size, execution time) trade-offs shown in Figure 7.
package solver

import (
	"context"
	"fmt"
	"runtime"
	"strings"
	"time"

	"fpga3d/internal/core"
	"fpga3d/internal/model"
	"fpga3d/internal/obs"
	"fpga3d/internal/strategy"
)

// Decision is the three-valued outcome of a decision problem.
type Decision = strategy.Decision

// Decision values, re-exported from the strategy layer.
const (
	// Unknown means the solver hit a node or time limit.
	Unknown = strategy.Unknown
	// Feasible means a placement was found (and verified).
	Feasible = strategy.Feasible
	// Infeasible means no placement exists.
	Infeasible = strategy.Infeasible
)

// Options configures the solver. The zero value enables every stage and
// rule with no search limits.
type Options struct {
	// NodeLimit bounds the branch-and-bound nodes per OPP call
	// (0 = unlimited).
	NodeLimit int64
	// TimeLimit bounds the wall time per OPP call (0 = unlimited).
	TimeLimit time.Duration

	// Workers sets the parallelism budget, which the solver spends at
	// two levels:
	//
	// Sweep racing. The optimization drivers (MinTime, MinBase,
	// ParetoFront and their Ctx variants) race up to Workers
	// per-container OPP decisions concurrently. The decisions are
	// independent certificates, so they parallelize without changing
	// the answer: the optimum, and the witness placement at the
	// optimum, are bit-identical to the sequential sweep (the lowest
	// container wins ties, exactly as in the sequential ascent). Each
	// raced probe runs a sequential engine — the two levels never
	// multiply, so a sweep uses at most Workers goroutines in total.
	//
	// Intra-probe work stealing. A single decision that is not part of
	// a sweep — SolveOPP, FeasibleFixedSchedule, SolveMultiChip, each
	// k-step of MinChips — explores its one branch-and-bound tree on a
	// work-stealing pool of Workers engine clones (core.Options.Workers)
	// when Workers is explicitly greater than 1. The verdict and the
	// witness validity are unchanged, but the statistics become the sum
	// over shards (core.Stats.Steals counts the hand-offs) and the
	// specific witness found may vary between runs.
	//
	// 0 (the zero value) means runtime.GOMAXPROCS(0) for sweep racing
	// but keeps single decisions sequential — the deterministic default;
	// intra-probe stealing is strictly opt-in via Workers > 1. 1 forces
	// everything sequential; negative values are treated as 1.
	Workers int

	// SkipBounds disables stage 1 (lower bounds).
	SkipBounds bool
	// SkipHeuristic disables stage 2 (the greedy placer).
	SkipHeuristic bool

	// DisableC4Rule, DisableHoleRule, DisableCliqueRule,
	// DisableCliqueForce and DisableOrientRules are forwarded to the
	// engine (ablations).
	DisableC4Rule      bool
	DisableHoleRule    bool
	DisableCliqueRule  bool
	DisableCliqueForce bool
	DisableOrientRules bool
	// TimeDisjointFirst flips the engine's value ordering on the time
	// axis to try Disjoint before Overlap.
	TimeDisjointFirst bool

	// Strategy selects how the three stages are composed per OPP
	// decision: "" or "staged" (the default — sequential short-circuit,
	// bit-identical to the historical pipeline), "portfolio"
	// (incumbent sharing across the probes of an optimization run:
	// dominated probes are answered by stored witnesses, sweeps are
	// seeded by previous answers, and with Workers > 1 a single
	// decision races the cheap prover against the exact search), or
	// "anneal" (the staged pipeline with a randomized annealing placer
	// between the greedy heuristic and the exact search; deterministic
	// per AnnealSeed). Unknown names are rejected with an error by
	// every entry point. See internal/strategy.
	Strategy string

	// Anytime enables the anytime tier for MinTime (mode spp): after
	// the greedy upper bound, a randomized annealing placer tightens
	// the incumbent (streaming each improvement through OnImprovement
	// and the Progress hook), then the exact refinement runs a
	// sequential binary search that raises the proven lower bound with
	// every infeasibility proof and lowers the incumbent with every
	// witness — so the optimality gap reported along the way is
	// non-increasing and reaches 0 exactly when the run proves its
	// incumbent optimal. The final answer equals the staged pipeline's
	// (same monotone predicate, same interval convergence); only the
	// path there differs. Other modes ignore the flag.
	Anytime bool
	// AnnealSeed seeds the randomized annealing placer used by the
	// "anneal" strategy and by Anytime runs; zero means seed 1. The
	// annealer is deterministic per seed.
	AnnealSeed int64
	// OnImprovement, when non-nil, receives one AnytimeUpdate per
	// incumbent or bound improvement of an Anytime MinTime run,
	// including a Final update when optimality is proven. Called
	// synchronously from the solve goroutine; implementations must be
	// fast and must not mutate the carried placement.
	OnImprovement func(AnytimeUpdate)
	// ReferenceRules runs the engine on its pre-optimization reference
	// rule implementations (see core.Options.ReferenceRules). Results
	// are bit-identical to the default fast paths, only slower; the
	// knob exists for differential testing and for cmd/fpgabench's
	// -compare-ref speedup measurement.
	ReferenceRules bool

	// Progress, when non-nil, receives live snapshots: one at every
	// stage transition and one per 256 branch-and-bound nodes during
	// the search. Shared across all OPP calls of an optimization run.
	Progress obs.ProgressFunc
	// Trace, when non-nil, receives structured JSONL events (solve
	// start/end, stage transitions, per-probe outcomes, incumbents,
	// final stats) so a whole run can be replayed and analyzed offline.
	Trace *obs.Tracer
	// Metrics, when non-nil, accumulates counters and gauges across
	// OPP calls (opp.calls, opp.feasible, opp.decided_by.*,
	// search.nodes, …). Safe to share between concurrent solves.
	Metrics *obs.Registry

	// inc is the per-run incumbent store shared by every strategy
	// invocation of one optimization run. Exported entry points attach
	// a fresh store to their local Options copy (withRun), so a caller
	// sharing one Options value across goroutines never shares a store
	// across instances or runs.
	inc *strategy.Incumbents
}

// withRun validates the strategy selection and attaches a fresh
// incumbent store for one optimization run. Every exported entry point
// calls it on its local Options copy.
func (o Options) withRun() (Options, error) {
	if err := o.validateStrategy(); err != nil {
		return o, err
	}
	if o.inc == nil {
		o.inc = strategy.NewIncumbents()
	}
	return o, nil
}

// validateStrategy checks the strategy name without attaching an
// incumbent store. Entry points whose probes run on cloned,
// re-oriented instances (the rotation sweeps) use this instead of
// withRun: a store keyed by chip footprint must never be shared
// across different oriented instances, so each per-orientation
// SolveOPPCtx call attaches its own fresh store.
func (o Options) validateStrategy() error {
	if !strategy.Valid(o.Strategy) {
		return fmt.Errorf("solver: unknown strategy %q (valid: %s)", o.Strategy, strings.Join(strategy.Names(), ", "))
	}
	return nil
}

// portfolio reports whether the portfolio strategy is selected.
func (o Options) portfolio() bool { return o.Strategy == strategy.NamePortfolio }

// strategyEnv builds the strategy layer's run environment from the
// options.
func (o Options) strategyEnv() *strategy.Env {
	return &strategy.Env{
		SearchOpts:    o.searchOptions,
		SkipBounds:    o.SkipBounds,
		SkipHeuristic: o.SkipHeuristic,
		Workers:       o.effectiveWorkers(),
		Progress:      o.Progress,
		Trace:         o.Trace,
		Metrics:       o.Metrics,
		Inc:           o.inc,
		AnnealSeed:    o.AnnealSeed,
	}
}

// pipeline resolves the configured strategy over this run's
// environment. The zero value selects Staged, the historical
// three-stage pipeline.
func (o Options) pipeline() strategy.Strategy {
	switch o.Strategy {
	case strategy.NamePortfolio:
		return strategy.NewPortfolio(o.strategyEnv())
	case strategy.NameAnneal:
		return strategy.NewAnneal(o.strategyEnv())
	default:
		return strategy.NewStaged(o.strategyEnv())
	}
}

// effectiveWorkers resolves Options.Workers to a concrete pool size.
func (o Options) effectiveWorkers() int {
	switch {
	case o.Workers == 0:
		return runtime.GOMAXPROCS(0)
	case o.Workers < 1:
		return 1
	default:
		return o.Workers
	}
}

func (o Options) coreOptions(ctx context.Context) core.Options {
	c := core.Options{
		Ctx:                ctx,
		NodeLimit:          o.NodeLimit,
		Progress:           o.Progress,
		DisableC4Rule:      o.DisableC4Rule,
		DisableHoleRule:    o.DisableHoleRule,
		DisableCliqueRule:  o.DisableCliqueRule,
		DisableCliqueForce: o.DisableCliqueForce,
		DisableOrientRules: o.DisableOrientRules,
		TimeOverlapFirst:   !o.TimeDisjointFirst,
		ReferenceRules:     o.ReferenceRules,
	}
	// Intra-probe work stealing is opt-in: only an explicit Workers > 1
	// parallelizes a single engine search. Sweep racers pin their probes
	// to Workers = 1 (oppProbe), so the two levels never multiply.
	if o.Workers > 1 {
		c.Workers = o.Workers
	}
	if o.TimeLimit > 0 {
		c.Deadline = time.Now().Add(o.TimeLimit)
	}
	return c
}

// searchOptions builds the engine options for stage 3. With a tracer
// or metrics registry attached it chains onto the progress hook, so
// the node-cadence snapshots (one per 256 nodes) also land in the
// JSONL record as "progress" events and keep the live gauges of the
// -metrics endpoint current while a search is still running.
func (o Options) searchOptions(ctx context.Context) core.Options {
	c := o.coreOptions(ctx)
	if o.Trace == nil && o.Metrics == nil {
		return c
	}
	prev := c.Progress
	tr, reg := o.Trace, o.Metrics
	c.Progress = func(s obs.Snapshot) {
		if tr != nil {
			tr.Emit("progress", map[string]any{
				"phase": s.Phase, "nodes": s.Nodes, "max_depth": s.MaxDepth,
				"nodes_per_sec": s.NodesPerSec, "conflicts": s.TotalConflicts(),
			})
		}
		reg.Gauge(obs.MetricSearchLiveNodes).Set(s.Nodes)
		reg.Gauge(obs.MetricSearchLiveDepth).Set(int64(s.MaxDepth))
		if prev != nil {
			prev(s)
		}
	}
	return c
}

// notifyPhase delivers a stage-transition snapshot to the Progress
// hook, so live tickers can show which stage a solve is in even before
// the first node-cadence snapshot arrives.
func (o Options) notifyPhase(phase string) {
	if o.Progress != nil {
		o.Progress(obs.Snapshot{Phase: phase})
	}
}

// StageTimings records the wall-clock time one OPP call (or, summed,
// a whole optimization run) spent in each stage of the three-stage
// framework of Section 3.1.
type StageTimings = strategy.StageTimings

// ms converts a duration to fractional milliseconds for trace fields.
func ms(d time.Duration) float64 { return strategy.MS(d) }

// stagesMS renders stage timings as a trace/JSON field.
func stagesMS(s StageTimings) map[string]float64 { return strategy.StagesMS(s) }

// OPPResult is the outcome of one orthogonal packing decision. Its
// canonical definition lives in the strategy layer: a Strategy's Solve
// returns exactly this shape.
type OPPResult = strategy.Result

// SolveOPP decides whether the instance fits into container c while
// satisfying its precedence constraints (problem FeasAT&FindS).
// To solve the unconstrained variant, pass in.WithoutPrec().
func SolveOPP(in *model.Instance, c model.Container, opt Options) (*OPPResult, error) {
	return SolveOPPCtx(context.Background(), in, c, opt)
}

// SolveOPPCtx is SolveOPP under a context: the search polls ctx on its
// node cadence and, once ctx is done, returns promptly with Decision
// Unknown, DecidedBy "canceled" and the partial statistics gathered so
// far. The error stays nil — a canceled probe is an answered question
// ("no longer needed"), not a failure; callers that need the
// distinction check ctx.Err themselves.
func SolveOPPCtx(ctx context.Context, in *model.Instance, c model.Container, opt Options) (*OPPResult, error) {
	if err := in.Validate(); err != nil {
		return nil, err
	}
	order, err := in.Order()
	if err != nil {
		return nil, err
	}
	opt, err = opt.withRun()
	if err != nil {
		return nil, err
	}
	return solveOPP(ctx, in, c, order, opt)
}

// solveOPP decides one orthogonal packing question through the
// configured strategy (internal/strategy): Staged reproduces the
// historical bounds → heuristic → search pipeline bit for bit,
// Portfolio adds incumbent dominance and prover-versus-search racing.
func solveOPP(ctx context.Context, in *model.Instance, c model.Container, order *model.Order, opt Options) (*OPPResult, error) {
	return opt.pipeline().Solve(ctx, &strategy.Problem{In: in, C: c, Order: order})
}

// buildProblem translates an instance+container into the engine's
// three-dimensional problem; see strategy.BuildProblem.
func buildProblem(in *model.Instance, c model.Container, order *model.Order, fixedStarts []int) *core.Problem {
	return strategy.BuildProblem(in, c, order, fixedStarts)
}
