package solver

import (
	"math/rand"
	"testing"
	"time"

	"fpga3d/internal/bench"
	"fpga3d/internal/model"
)

func TestSolveOPPRejectsInvalidInstance(t *testing.T) {
	bad := &model.Instance{} // no tasks
	if _, err := SolveOPP(bad, model.Container{W: 1, H: 1, T: 1}, Options{}); err == nil {
		t.Fatal("invalid instance accepted")
	}
	cyc := &model.Instance{
		Tasks: []model.Task{{W: 1, H: 1, Dur: 1}, {W: 1, H: 1, Dur: 1}},
		Prec:  []model.Arc{{From: 0, To: 1}, {From: 1, To: 0}},
	}
	if _, err := SolveOPP(cyc, model.Container{W: 1, H: 1, T: 4}, Options{}); err == nil {
		t.Fatal("cyclic precedence accepted")
	}
}

func TestSolveOPPTrivial(t *testing.T) {
	in := &model.Instance{Tasks: []model.Task{{W: 2, H: 2, Dur: 3}}}
	r, err := SolveOPP(in, model.Container{W: 2, H: 2, T: 3}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if r.Decision != Feasible {
		t.Fatalf("single fitting task infeasible: %v", r.Decision)
	}
	r, err = SolveOPP(in, model.Container{W: 2, H: 2, T: 2}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if r.Decision != Infeasible {
		t.Fatalf("oversized task accepted: %v", r.Decision)
	}
}

// TestMonotonicity: growing any container axis preserves feasibility.
func TestMonotonicity(t *testing.T) {
	opt := Options{TimeLimit: 20 * time.Second}
	for seed := int64(0); seed < 150; seed++ {
		rng := rand.New(rand.NewSource(seed))
		in := bench.Random(rng, 2+rng.Intn(3), 3, 3, 0.3)
		c := model.Container{W: 3, H: 3, T: 3}
		if !c.Fits(in) {
			continue
		}
		r, err := SolveOPP(in, c, opt)
		if err != nil {
			t.Fatal(err)
		}
		if r.Decision != Feasible {
			continue
		}
		for _, bigger := range []model.Container{
			{W: 4, H: 3, T: 3}, {W: 3, H: 4, T: 3}, {W: 3, H: 3, T: 4},
		} {
			rb, err := SolveOPP(in, bigger, opt)
			if err != nil {
				t.Fatal(err)
			}
			if rb.Decision != Feasible {
				t.Fatalf("seed %d: feasible at %v but %v at %v", seed, c, rb.Decision, bigger)
			}
		}
	}
}

// TestMinTimeIsOptimal: the reported minimum is feasible and one cycle
// less is infeasible, on random instances.
func TestMinTimeIsOptimal(t *testing.T) {
	opt := Options{TimeLimit: 30 * time.Second}
	for seed := int64(100); seed < 200; seed++ {
		rng := rand.New(rand.NewSource(seed))
		in := bench.Random(rng, 2+rng.Intn(3), 3, 3, 0.4)
		W, H := 4, 4
		r, err := MinTime(in, W, H, opt)
		if err != nil {
			t.Fatal(err)
		}
		if r.Decision != Feasible {
			t.Fatalf("seed %d: MinTime undecided", seed)
		}
		order, _ := in.Order()
		if err := r.Placement.Verify(in, model.Container{W: W, H: H, T: r.Value}, order); err != nil {
			t.Fatalf("seed %d: witness invalid: %v", seed, err)
		}
		if r.Value > r.LowerBound {
			probe, err := SolveOPP(in, model.Container{W: W, H: H, T: r.Value - 1}, opt)
			if err != nil {
				t.Fatal(err)
			}
			if probe.Decision != Infeasible {
				t.Fatalf("seed %d: T=%d claimed optimal but T-1 is %v", seed, r.Value, probe.Decision)
			}
		}
		if r.Value < r.LowerBound {
			t.Fatalf("seed %d: optimum %d below lower bound %d", seed, r.Value, r.LowerBound)
		}
	}
}

// TestMinBaseIsOptimal: same for the chip side.
func TestMinBaseIsOptimal(t *testing.T) {
	opt := Options{TimeLimit: 30 * time.Second}
	for seed := int64(300); seed < 400; seed++ {
		rng := rand.New(rand.NewSource(seed))
		in := bench.Random(rng, 2+rng.Intn(3), 3, 3, 0.4)
		order, _ := in.Order()
		T := order.CriticalPath() + rng.Intn(3)
		r, err := MinBase(in, T, opt)
		if err != nil {
			t.Fatal(err)
		}
		if r.Decision != Feasible {
			t.Fatalf("seed %d: MinBase undecided", seed)
		}
		if err := r.Placement.Verify(in, model.Container{W: r.Value, H: r.Value, T: T}, order); err != nil {
			t.Fatalf("seed %d: witness invalid: %v", seed, err)
		}
		if r.Value > 1 {
			probe, err := SolveOPP(in, model.Container{W: r.Value - 1, H: r.Value - 1, T: T}, opt)
			if err != nil {
				t.Fatal(err)
			}
			if probe.Decision != Infeasible {
				t.Fatalf("seed %d: h=%d claimed optimal but h-1 is %v", seed, r.Value, probe.Decision)
			}
		}
	}
}

func TestMinBaseBelowCriticalPath(t *testing.T) {
	in := &model.Instance{
		Tasks: []model.Task{{W: 1, H: 1, Dur: 2}, {W: 1, H: 1, Dur: 2}},
		Prec:  []model.Arc{{From: 0, To: 1}},
	}
	r, err := MinBase(in, 3, Options{}) // critical path is 4
	if err != nil {
		t.Fatal(err)
	}
	if r.Decision != Infeasible {
		t.Fatalf("MinBase below critical path: %v", r.Decision)
	}
}

func TestMinTimeSpatialMisfit(t *testing.T) {
	in := &model.Instance{Tasks: []model.Task{{W: 5, H: 1, Dur: 1}}}
	r, err := MinTime(in, 4, 4, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if r.Decision != Infeasible {
		t.Fatalf("task wider than chip: %v", r.Decision)
	}
}

func TestUnknownOnTinyLimits(t *testing.T) {
	// With a 1-node budget and all rules off, a nontrivial decision must
	// come back Unknown rather than wrong.
	de := bench.DE()
	opt := Options{
		SkipBounds: true, SkipHeuristic: true,
		NodeLimit:     1,
		DisableC4Rule: true, DisableHoleRule: true,
		DisableCliqueRule: true, DisableCliqueForce: true,
	}
	r, err := SolveOPP(de, model.Container{W: 32, H: 32, T: 6}, opt)
	if err != nil {
		t.Fatal(err)
	}
	if r.Decision != Unknown {
		t.Fatalf("decision with 1 node: %v", r.Decision)
	}
}

func TestFixedScheduleValidation(t *testing.T) {
	in := &model.Instance{
		Tasks: []model.Task{{W: 1, H: 1, Dur: 2}, {W: 1, H: 1, Dur: 1}},
		Prec:  []model.Arc{{From: 0, To: 1}},
	}
	// Schedule violating the precedence must be rejected up front.
	if _, err := FeasibleFixedSchedule(in, model.Container{W: 2, H: 2, T: 4}, []int{0, 1}, Options{}); err == nil {
		t.Fatal("precedence-violating schedule accepted")
	}
	// Valid schedule.
	r, err := FeasibleFixedSchedule(in, model.Container{W: 2, H: 2, T: 4}, []int{0, 2}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if r.Decision != Feasible {
		t.Fatalf("valid schedule infeasible: %v", r.Decision)
	}
	if r.Placement.S[0] != 0 || r.Placement.S[1] != 2 {
		t.Fatal("start times not preserved")
	}
}

func TestMinBaseFixedScheduleDE(t *testing.T) {
	de := bench.DE()
	starts := []int{0, 0, 2, 4, 5, 0, 2, 0, 2, 0, 1}
	r, err := MinBaseFixedSchedule(de, starts, Options{TimeLimit: 60 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	// Four multipliers run concurrently and tile 32×32 completely, while
	// two ALU ops are scheduled alongside: 33 is optimal.
	if r.Decision != Feasible || r.Value != 33 {
		t.Fatalf("MinBaseFixedSchedule = %d (%v), want 33", r.Value, r.Decision)
	}
	for i, s := range starts {
		if r.Placement.S[i] != s {
			t.Fatal("start times not preserved")
		}
	}
}

func TestDecisionString(t *testing.T) {
	if Feasible.String() != "feasible" || Infeasible.String() != "infeasible" || Unknown.String() != "unknown" {
		t.Fatal("Decision strings wrong")
	}
}

func TestDecidedByStages(t *testing.T) {
	de := bench.DE()
	// An infeasible-by-bounds case.
	r, err := SolveOPP(de, model.Container{W: 16, H: 16, T: 12}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if r.Decision != Infeasible || len(r.DecidedBy) < 6 || r.DecidedBy[:5] != "bound" {
		t.Fatalf("expected a bound to decide, got %q (%v)", r.DecidedBy, r.Decision)
	}
	// A feasible-by-heuristic case.
	r, err = SolveOPP(de, model.Container{W: 64, H: 64, T: 40}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if r.Decision != Feasible || r.DecidedBy != "heuristic" {
		t.Fatalf("expected the heuristic to decide, got %q (%v)", r.DecidedBy, r.Decision)
	}
	// Force the search to decide.
	r, err = SolveOPP(de, model.Container{W: 64, H: 64, T: 40},
		Options{SkipBounds: true, SkipHeuristic: true})
	if err != nil {
		t.Fatal(err)
	}
	if r.Decision != Feasible || r.DecidedBy != "search" {
		t.Fatalf("expected the search to decide, got %q (%v)", r.DecidedBy, r.Decision)
	}
}
