package solver

import (
	"context"
	"math/rand"
	"reflect"
	"testing"

	"fpga3d/internal/bench"
	"fpga3d/internal/bounds"
	"fpga3d/internal/core"
	"fpga3d/internal/heur"
	"fpga3d/internal/model"
)

// legacyOPP reimplements the pre-strategy-layer OPP pipeline verbatim —
// bounds, then greedy heuristic, then the exact engine — as the
// reference for the differential tests below. Any behavioral drift in
// the default (staged) strategy shows up as a mismatch against this
// replica: Decision, DecidedBy, witness placement and full engine
// Stats must all coincide bit for bit.
func legacyOPP(ctx context.Context, in *model.Instance, c model.Container, order *model.Order, opt Options) *OPPResult {
	res := &OPPResult{}
	if ctx.Err() != nil {
		res.Decision = Unknown
		res.DecidedBy = "canceled"
		return res
	}
	if !opt.SkipBounds {
		if bad, why := bounds.OPPInfeasible(in, c, order); bad {
			res.Decision = Infeasible
			res.DecidedBy = "bound: " + why
			return res
		}
	}
	if !opt.SkipHeuristic {
		if pl, ok := heur.Place(in, c, order); ok {
			res.Decision = Feasible
			res.Placement = pl
			res.DecidedBy = "heuristic"
			return res
		}
	}
	r := core.Solve(buildProblem(in, c, order, nil), opt.coreOptions(ctx))
	res.Stats = r.Stats
	switch r.Status {
	case core.StatusFeasible:
		res.Decision = Feasible
		res.Placement = &model.Placement{
			X: append([]int(nil), r.Solution.Coords[0]...),
			Y: append([]int(nil), r.Solution.Coords[1]...),
			S: append([]int(nil), r.Solution.Coords[2]...),
		}
		res.DecidedBy = "search"
	case core.StatusInfeasible:
		res.Decision = Infeasible
		res.DecidedBy = "search"
	case core.StatusCanceled:
		res.Decision = Unknown
		res.DecidedBy = "canceled"
	default:
		res.Decision = Unknown
		res.DecidedBy = "limit"
	}
	return res
}

// diffContainers yields the probing containers for one random
// instance: the heuristic's exact footprint (heuristic-decided), one
// cycle tighter (search or bounds), a spatial squeeze, and a generous
// box — together they exercise every DecidedBy path.
func diffContainers(in *model.Instance, order *model.Order) []model.Container {
	maxW, maxH := in.MaxW(), in.MaxH()
	cs := []model.Container{
		{W: maxW + 1, H: maxH + 1, T: in.TotalDuration() + 1}, // roomy
		{W: maxW, H: maxH, T: order.CriticalPath()},           // tight all around
	}
	if _, mk, ok := heur.MinMakespan(in, maxW+1, maxH, order); ok {
		cs = append(cs,
			model.Container{W: maxW + 1, H: maxH, T: mk},     // heuristic exact
			model.Container{W: maxW + 1, H: maxH, T: mk - 1}, // one tighter
		)
	}
	return cs
}

// TestDifferentialStagedMatchesLegacy drives the default strategy and
// the legacy pipeline replica over ≥100 random instances × several
// containers each and requires bit-identical results, including the
// engine's full Stats struct.
func TestDifferentialStagedMatchesLegacy(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	instances := 0
	for instances < 120 {
		in := bench.Random(rng, 2+rng.Intn(5), 3, 3, 0.35)
		order, err := in.Order()
		if err != nil {
			continue
		}
		instances++
		for _, c := range diffContainers(in, order) {
			if c.T < 1 || c.W < 1 || c.H < 1 {
				continue
			}
			want := legacyOPP(context.Background(), in, c, order, Options{})
			got, err := SolveOPP(in, c, Options{})
			if err != nil {
				t.Fatalf("instance %d %+v: %v", instances, c, err)
			}
			if got.Decision != want.Decision || got.DecidedBy != want.DecidedBy {
				t.Fatalf("instance %d %+v: got %v by %q, legacy %v by %q",
					instances, c, got.Decision, got.DecidedBy, want.Decision, want.DecidedBy)
			}
			if !reflect.DeepEqual(got.Placement, want.Placement) {
				t.Fatalf("instance %d %+v: witness diverged\n got  %+v\n want %+v",
					instances, c, got.Placement, want.Placement)
			}
			if !reflect.DeepEqual(got.Stats, want.Stats) {
				t.Fatalf("instance %d %+v: stats diverged\n got  %+v\n want %+v",
					instances, c, got.Stats, want.Stats)
			}
		}
	}
}

// TestDifferentialStagedMatchesLegacyAblations repeats the comparison
// under the stage ablations, which route every decision through the
// remaining stages.
func TestDifferentialStagedMatchesLegacyAblations(t *testing.T) {
	rng := rand.New(rand.NewSource(52))
	opts := []Options{
		{SkipHeuristic: true},
		{SkipBounds: true},
		{TimeDisjointFirst: true},
	}
	for i := 0; i < 40; i++ {
		in := bench.Random(rng, 2+rng.Intn(4), 3, 3, 0.3)
		order, err := in.Order()
		if err != nil {
			continue
		}
		for _, opt := range opts {
			for _, c := range diffContainers(in, order) {
				if c.T < 1 {
					continue
				}
				// With bounds ablated nothing screens a task that exceeds
				// the container, and the engine treats such input as a
				// programmer error — in the legacy pipeline exactly as in
				// the staged strategy. Keep the differential domain to
				// well-formed probes.
				misfit := false
				for _, task := range in.Tasks {
					if task.W > c.W || task.H > c.H || task.Dur > c.T {
						misfit = true
						break
					}
				}
				if misfit {
					continue
				}
				want := legacyOPP(context.Background(), in, c, order, opt)
				got, err := SolveOPP(in, c, opt)
				if err != nil {
					t.Fatalf("iter %d opt %+v: %v", i, opt, err)
				}
				if got.Decision != want.Decision || got.DecidedBy != want.DecidedBy ||
					!reflect.DeepEqual(got.Placement, want.Placement) ||
					!reflect.DeepEqual(got.Stats, want.Stats) {
					t.Fatalf("iter %d opt %+v container %+v: staged diverged from legacy", i, opt, c)
				}
			}
		}
	}
}

// legacyMinTime replicates the pre-strategy-layer sequential MinTime
// sweep: per-probe heuristic recomputation (no memo), no incumbent
// probing, plain bisection.
func legacyMinTime(in *model.Instance, W, H int, order *model.Order, opt Options) (value int, place *model.Placement, probes int, stats core.Stats) {
	lb := bounds.MinTimeLB(in, W, H, order)
	ubPlace, ub, _ := heur.MinMakespan(in, W, H, order)
	best, bestPlace := ub, ubPlace
	lo, hi := lb, ub
	for lo < hi {
		mid := (lo + hi) / 2
		r := legacyOPP(context.Background(), in, model.Container{W: W, H: H, T: mid}, order, opt)
		probes++
		stats.Add(r.Stats)
		switch r.Decision {
		case Feasible:
			hi = mid
			best, bestPlace = mid, r.Placement
		case Infeasible:
			lo = mid + 1
		default:
			return best, bestPlace, probes, stats
		}
	}
	return best, bestPlace, probes, stats
}

// TestDifferentialMinTimeStagedMatchesLegacy checks that the staged
// sweep — now running through the strategy layer with the memoized
// stage 2 — reproduces the legacy sweep's value, witness, probe count
// and engine statistics exactly.
func TestDifferentialMinTimeStagedMatchesLegacy(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	checked := 0
	for checked < 100 {
		in := bench.Random(rng, 2+rng.Intn(4), 3, 3, 0.3)
		order, err := in.Order()
		if err != nil {
			continue
		}
		checked++
		W, H := in.MaxW()+rng.Intn(2), in.MaxH()+rng.Intn(2)
		wantV, wantP, wantProbes, wantStats := legacyMinTime(in, W, H, order, Options{})
		got, err := MinTime(in, W, H, Options{Workers: 1})
		if err != nil {
			t.Fatalf("instance %d: %v", checked, err)
		}
		if got.Decision != Feasible || got.Value != wantV {
			t.Fatalf("instance %d %dx%d: value %d (%v), legacy %d", checked, W, H, got.Value, got.Decision, wantV)
		}
		if !reflect.DeepEqual(got.Placement, wantP) {
			t.Fatalf("instance %d %dx%d: witness diverged", checked, W, H)
		}
		if got.Probes != wantProbes {
			t.Fatalf("instance %d %dx%d: probes %d, legacy %d", checked, W, H, got.Probes, wantProbes)
		}
		if !reflect.DeepEqual(got.Stats, wantStats) {
			t.Fatalf("instance %d %dx%d: stats diverged\n got  %+v\n want %+v", checked, W, H, got.Stats, wantStats)
		}
	}
}

// TestStrategyUnknownRejected checks that every optimization entry
// point rejects an unknown strategy name up front.
func TestStrategyUnknownRejected(t *testing.T) {
	in := &model.Instance{Tasks: []model.Task{{W: 1, H: 1, Dur: 1}}}
	bad := Options{Strategy: "greedy"}
	if _, err := SolveOPP(in, model.Container{W: 1, H: 1, T: 1}, bad); err == nil {
		t.Error("SolveOPP accepted an unknown strategy")
	}
	if _, err := MinTime(in, 1, 1, bad); err == nil {
		t.Error("MinTime accepted an unknown strategy")
	}
	if _, err := MinBase(in, 1, bad); err == nil {
		t.Error("MinBase accepted an unknown strategy")
	}
	if _, err := MinArea(in, 1, bad); err == nil {
		t.Error("MinArea accepted an unknown strategy")
	}
	if _, err := ParetoFront(in, bad); err == nil {
		t.Error("ParetoFront accepted an unknown strategy")
	}
	if _, err := SolveMultiChip(in, 1, 1, 1, 1, bad); err == nil {
		t.Error("SolveMultiChip accepted an unknown strategy")
	}
	if _, err := MinChips(in, 1, 1, 1, bad); err == nil {
		t.Error("MinChips accepted an unknown strategy")
	}
	if _, _, err := MinTimeWithRotation(in, 1, 1, bad); err == nil {
		t.Error("MinTimeWithRotation accepted an unknown strategy")
	}
	if _, err := MinTimeMultiChip(in, 1, 1, 1, bad); err == nil {
		t.Error("MinTimeMultiChip accepted an unknown strategy")
	}
	if _, err := FeasibleFixedSchedule(in, model.Container{W: 1, H: 1, T: 1}, []int{0}, bad); err == nil {
		t.Error("FeasibleFixedSchedule accepted an unknown strategy")
	}
}

// TestPortfolioMatchesStagedAnswers checks answer (not stats)
// equivalence of the portfolio strategy across random instances: same
// decisions and same optimal values, with valid witnesses.
func TestPortfolioMatchesStagedAnswers(t *testing.T) {
	rng := rand.New(rand.NewSource(54))
	for i := 0; i < 60; i++ {
		in := bench.Random(rng, 2+rng.Intn(4), 3, 3, 0.3)
		order, err := in.Order()
		if err != nil {
			continue
		}
		W, H := in.MaxW()+rng.Intn(2), in.MaxH()+rng.Intn(2)
		st, err := MinTime(in, W, H, Options{Workers: 1})
		if err != nil {
			t.Fatal(err)
		}
		pf, err := MinTime(in, W, H, Options{Workers: 1, Strategy: "portfolio"})
		if err != nil {
			t.Fatal(err)
		}
		if st.Decision != pf.Decision || st.Value != pf.Value {
			t.Fatalf("iter %d %dx%d: staged %v/%d, portfolio %v/%d",
				i, W, H, st.Decision, st.Value, pf.Decision, pf.Value)
		}
		if pf.Placement != nil {
			c := model.Container{W: W, H: H, T: pf.Value}
			if err := pf.Placement.Verify(in, c, order); err != nil {
				t.Fatalf("iter %d: portfolio witness invalid: %v", i, err)
			}
		}
	}
}
