package solver

import (
	"bytes"
	"encoding/json"
	"io"
	"math/rand"
	"strings"
	"sync"
	"testing"
	"time"

	"fpga3d/internal/bench"
	"fpga3d/internal/model"
	"fpga3d/internal/obs"
)

// traceLines parses a JSONL buffer into one map per event, failing the
// test on any malformed line.
func traceLines(t *testing.T, buf *bytes.Buffer) []map[string]any {
	t.Helper()
	var out []map[string]any
	for _, ln := range strings.Split(strings.TrimSuffix(buf.String(), "\n"), "\n") {
		var obj map[string]any
		if err := json.Unmarshal([]byte(ln), &obj); err != nil {
			t.Fatalf("malformed trace line %q: %v", ln, err)
		}
		out = append(out, obj)
	}
	return out
}

// normalizeTrace strips the wall-clock-dependent fields so the rest of
// the event stream can be compared exactly.
func normalizeTrace(events []map[string]any) []map[string]any {
	for _, e := range events {
		for _, k := range []string{"t", "elapsed_ms", "stages_ms", "report"} {
			delete(e, k)
		}
	}
	return events
}

func marshalEvents(t *testing.T, events []map[string]any) []string {
	t.Helper()
	var out []string
	for _, e := range events {
		b, err := json.Marshal(e)
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, string(b))
	}
	return out
}

// TestTraceGoldenTinyOPP pins the full (timing-normalized) event
// stream for a deterministic tiny OPP instance: two 2×2×1 modules on a
// 2×2×2 chip must stack in time, decided by the search with both fast
// stages disabled.
func TestTraceGoldenTinyOPP(t *testing.T) {
	in := &model.Instance{Name: "tiny", Tasks: []model.Task{
		{W: 2, H: 2, Dur: 1}, {W: 2, H: 2, Dur: 1},
	}}
	var buf bytes.Buffer
	opt := Options{SkipBounds: true, SkipHeuristic: true, Trace: obs.NewTracer(&buf)}
	r, err := SolveOPP(in, model.Container{W: 2, H: 2, T: 2}, opt)
	if err != nil {
		t.Fatal(err)
	}
	if r.Decision != Feasible || r.DecidedBy != "search" {
		t.Fatalf("decision %v by %s", r.Decision, r.DecidedBy)
	}
	got := marshalEvents(t, normalizeTrace(nonSpanEvents(traceLines(t, &buf))))
	want := []string{
		`{"H":2,"T":2,"W":2,"ev":"opp_start","instance":"tiny","n":2}`,
		`{"ev":"stage","phase":"search"}`,
		`{"decided_by":"search","decision":"feasible","ev":"opp_end","nodes":` +
			nodesJSON(r.Stats.Nodes) + `,"stats":` + canonJSON(t, r.Stats) + `}`,
	}
	if len(got) != len(want) {
		t.Fatalf("got %d events:\n%s\nwant %d", len(got), strings.Join(got, "\n"), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("event %d:\ngot  %s\nwant %s", i, got[i], want[i])
		}
	}
}

func nodesJSON(n int64) string {
	b, _ := json.Marshal(n)
	return string(b)
}

// canonJSON marshals v the way it appears after a trace round-trip:
// object keys sorted, numbers as float64.
func canonJSON(t *testing.T, v any) string {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	var m any
	if err := json.Unmarshal(b, &m); err != nil {
		t.Fatal(err)
	}
	b, err = json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// TestTraceFullFramework: with all stages on, a bound-refuted call and
// a heuristic-decided call produce the expected stage events.
func TestTraceFullFramework(t *testing.T) {
	in := &model.Instance{Name: "one", Tasks: []model.Task{{W: 2, H: 2, Dur: 3}}}

	// Too small in time: stage 1 refutes.
	var buf bytes.Buffer
	opt := Options{Trace: obs.NewTracer(&buf)}
	r, err := SolveOPP(in, model.Container{W: 2, H: 2, T: 2}, opt)
	if err != nil {
		t.Fatal(err)
	}
	if r.Decision != Infeasible || !strings.HasPrefix(r.DecidedBy, "bound:") {
		t.Fatalf("decision %v by %s", r.Decision, r.DecidedBy)
	}
	evs := nonSpanEvents(traceLines(t, &buf))
	if len(evs) != 2 || evs[0]["ev"] != "opp_start" || evs[1]["ev"] != "opp_end" {
		t.Fatalf("bound-refuted events: %v", evs)
	}
	if evs[1]["bound"] == "" || evs[1]["decided_by"] != r.DecidedBy {
		t.Errorf("opp_end missing bound name: %v", evs[1])
	}

	// Fits exactly: stage 2 places it after a bounds pass.
	buf.Reset()
	opt.Trace = obs.NewTracer(&buf)
	r, err = SolveOPP(in, model.Container{W: 2, H: 2, T: 3}, opt)
	if err != nil {
		t.Fatal(err)
	}
	if r.Decision != Feasible || r.DecidedBy != "heuristic" {
		t.Fatalf("decision %v by %s", r.Decision, r.DecidedBy)
	}
	evs = nonSpanEvents(traceLines(t, &buf))
	var kinds []string
	for _, e := range evs {
		k := e["ev"].(string)
		if k == "stage" {
			k += ":" + e["phase"].(string) + ":" + e["outcome"].(string)
		}
		kinds = append(kinds, k)
	}
	want := "opp_start,stage:bounds:pass,opp_end"
	if got := strings.Join(kinds, ","); got != want {
		t.Errorf("event kinds %q, want %q", got, want)
	}
}

// nonSpanEvents filters span events out of a trace, for assertions on
// the exact sequence of the other event types (span structure has its
// own tests).
func nonSpanEvents(evs []map[string]any) []map[string]any {
	var out []map[string]any
	for _, e := range evs {
		if e["ev"] != "span" {
			out = append(out, e)
		}
	}
	return out
}

// probingInstance returns a small random instance whose heuristic
// makespan exceeds the stage-1 lower bound on a 4×4 chip, so MinTime's
// binary search actually probes the exact engine (the DE benchmark is
// decided at the bound and would leave the OPP loop untraced).
func probingInstance() *model.Instance {
	rng := rand.New(rand.NewSource(297))
	return bench.Random(rng, 3+rng.Intn(4), 3, 3, 0.3)
}

// TestTraceMinTimeRun: an spp optimization run brackets its probes with
// solve_start/solve_end, reports the lower bound, and logs incumbents.
func TestTraceMinTimeRun(t *testing.T) {
	in := probingInstance()
	var buf bytes.Buffer
	opt := Options{Trace: obs.NewTracer(&buf), Metrics: obs.NewRegistry()}
	r, err := MinTime(in, 4, 4, opt)
	if err != nil {
		t.Fatal(err)
	}
	if r.Decision != Feasible {
		t.Fatalf("spp undecided: %v", r.Decision)
	}
	evs := traceLines(t, &buf)
	counts := map[string]int{}
	for _, e := range evs {
		counts[e["ev"].(string)]++
	}
	if counts["solve_start"] != 1 || counts["solve_end"] != 1 {
		t.Errorf("run not bracketed: %v", counts)
	}
	if counts["lower_bound"] != 1 {
		t.Errorf("missing lower_bound event: %v", counts)
	}
	if counts["incumbent"] < 1 || counts["probe"] < 1 || counts["opp_start"] < 1 {
		t.Errorf("missing loop events: %v", counts)
	}
	if counts["opp_start"] != counts["opp_end"] {
		t.Errorf("unbalanced opp events: %v", counts)
	}
	// The run's span closes when the driver returns, so the final event
	// is the driver span; solve_end is the last non-span event before it.
	first := evs[0]
	if first["ev"] != "solve_start" {
		t.Errorf("first event %v", first["ev"])
	}
	var last map[string]any
	for _, e := range evs {
		if e["ev"] != "span" {
			last = e
		}
	}
	if last["ev"] != "solve_end" {
		t.Errorf("last non-span event %v", last["ev"])
	}
	if last["decision"] != "feasible" || last["value"] != float64(r.Value) {
		t.Errorf("solve_end payload %v", last)
	}
	// Span tree: every opp span is parented to the spp driver span.
	spans := map[string]map[string]any{} // span_id → event
	for _, e := range evs {
		if e["ev"] == "span" {
			spans[e["span_id"].(string)] = e
		}
	}
	var driverID string
	for id, s := range spans {
		if s["name"] == "spp" {
			driverID = id
		}
	}
	if driverID == "" {
		t.Fatalf("no spp driver span in %v", spans)
	}
	opps := 0
	for _, s := range spans {
		if s["name"] == "opp" {
			opps++
			if s["parent_id"] != driverID {
				t.Errorf("opp span not parented to driver: %v", s)
			}
		}
	}
	if opps != counts["opp_start"] {
		t.Errorf("%d opp spans for %d opp_start events", opps, counts["opp_start"])
	}
	// The metrics registry saw the same run.
	snap := opt.Metrics.Snapshot()
	if snap["opp.calls"] != int64(r.Probes) {
		t.Errorf("opp.calls = %d, probes = %d", snap["opp.calls"], r.Probes)
	}
	if snap["incumbent.spp"] != int64(r.Value) {
		t.Errorf("incumbent.spp = %d, value = %d", snap["incumbent.spp"], r.Value)
	}
	if tr := opt.Trace; tr.Err() != nil {
		t.Errorf("tracer error: %v", tr.Err())
	}
}

// TestProgressPhases: the hook sees each stage of the framework as it
// is entered. The first solve is decided by the heuristic (bounds and
// heuristic phases); the second disables the fast stages so the search
// phase is entered too.
func TestProgressPhases(t *testing.T) {
	in := &model.Instance{Name: "tiny", Tasks: []model.Task{
		{W: 2, H: 2, Dur: 1}, {W: 2, H: 2, Dur: 1},
	}}
	var mu sync.Mutex
	var phases []string
	opt := Options{Progress: func(s obs.Snapshot) {
		mu.Lock()
		phases = append(phases, s.Phase)
		mu.Unlock()
	}}
	if _, err := SolveOPP(in, model.Container{W: 2, H: 2, T: 2}, opt); err != nil {
		t.Fatal(err)
	}
	skip := opt
	skip.SkipBounds, skip.SkipHeuristic = true, true
	if _, err := SolveOPP(in, model.Container{W: 2, H: 2, T: 2}, skip); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	joined := strings.Join(phases, ",")
	for _, phase := range []string{obs.PhaseBounds, obs.PhaseHeuristic, obs.PhaseSearch} {
		if !strings.Contains(joined, phase) {
			t.Errorf("phase %q not seen in %q", phase, joined)
		}
	}
}

// TestStageTimingsAccumulate: per-stage durations are recorded per OPP
// call and summed across an optimization run.
func TestStageTimingsAccumulate(t *testing.T) {
	in := probingInstance()
	r, err := MinTime(in, 4, 4, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if r.Probes == 0 {
		t.Fatal("instance no longer probes; pick another seed")
	}
	total := r.Stages.Bounds + r.Stages.Heuristic + r.Stages.Search
	if total <= 0 {
		t.Errorf("no stage time recorded: %+v", r.Stages)
	}
	if total > r.Elapsed+time.Second {
		t.Errorf("stage total %v exceeds elapsed %v", total, r.Elapsed)
	}
	var s StageTimings
	s.Add(StageTimings{Bounds: 1, Heuristic: 2, Search: 3})
	s.Add(StageTimings{Bounds: 10, Heuristic: 20, Search: 30})
	if s != (StageTimings{Bounds: 11, Heuristic: 22, Search: 33}) {
		t.Errorf("StageTimings.Add = %+v", s)
	}
	if !strings.Contains(s.String(), "bounds") {
		t.Errorf("StageTimings.String() = %q", s.String())
	}
}

// TestObsSharedAcrossGoroutines runs concurrent Pareto sweeps that
// share one metrics registry, tracer and progress hook — the shape of
// a parallel parameter study. Run under -race in CI.
func TestObsSharedAcrossGoroutines(t *testing.T) {
	in := &model.Instance{Name: "par", Tasks: []model.Task{
		{W: 2, H: 2, Dur: 2}, {W: 2, H: 1, Dur: 1}, {W: 1, H: 2, Dur: 2}, {W: 1, H: 1, Dur: 1},
	}, Prec: []model.Arc{{From: 0, To: 3}}}
	reg := obs.NewRegistry()
	tr := obs.NewTracer(io.Discard)
	opt := Options{
		Metrics:  reg,
		Trace:    tr,
		Progress: obs.NewPrinter(io.Discard, time.Millisecond),
	}
	var wg sync.WaitGroup
	errs := make(chan error, 4)
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := ParetoFront(in, opt); err != nil {
				errs <- err
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if reg.Counter("opp.calls").Value() == 0 {
		t.Error("shared registry saw no OPP calls")
	}
	if tr.Err() != nil {
		t.Errorf("shared tracer error: %v", tr.Err())
	}
	if tr.Events() == 0 {
		t.Error("shared tracer saw no events")
	}
}
