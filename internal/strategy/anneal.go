package strategy

import (
	"context"
	"fmt"
	"time"

	"fpga3d/internal/bounds"
	"fpga3d/internal/heur"
	"fpga3d/internal/model"
	"fpga3d/internal/obs"
)

// Anneal is the staged pipeline with a randomized annealing placer
// inserted between the greedy heuristic and the exact search: bounds →
// greedy → anneal → search. The annealer perturbs task-priority
// permutations over the same occupancy-grid list scheduler the greedy
// rules use (deterministic per Env.AnnealSeed), so it finds feasible
// witnesses on instances where every greedy rule misses, at a cost of
// one bounded annealing walk per chip footprint (memoized in the
// incumbent store, like the greedy placer).
//
// Every annealed schedule is recorded in the incumbent store, and a
// probe dominated by a stored witness is answered outright — the
// annealer's witnesses thereby seed both later probes of a sweep and
// the exact search's upper bound in anytime runs. Decisions are
// exact: the annealer only ever adds feasible witnesses, and the
// branch-and-bound still settles everything the cheap tiers cannot.
type Anneal struct {
	env *Env
}

// NewAnneal returns the annealing strategy over env.
func NewAnneal(env *Env) *Anneal { return &Anneal{env: env} }

// Name returns NameAnneal.
func (a *Anneal) Name() string { return NameAnneal }

// Solve runs bounds → greedy → anneal → search with short-circuit
// evaluation. A nil error with Decision Unknown means a limit or
// cancellation.
func (a *Anneal) Solve(ctx context.Context, p *Problem) (*Result, error) {
	if p.FixedStarts != nil {
		return a.env.solveFixed(ctx, p, nil)
	}
	e := a.env
	start := time.Now()
	res := &Result{}
	ctx, osp := e.oppSpan(ctx, p)
	defer func() { e.endOPPSpan(osp, res) }()
	e.Metrics.Counter("opp.calls").Inc()
	e.Trace.Emit("opp_start", map[string]any{
		"instance": p.In.Name, "n": p.In.N(), "W": p.C.W, "H": p.C.H, "T": p.C.T,
	})

	if ctx.Err() != nil {
		res.Decision = Unknown
		res.DecidedBy = "canceled"
		res.Elapsed = time.Since(start)
		e.Metrics.Counter("opp.decided_by.canceled").Inc()
		e.traceOPPEnd(res, nil)
		return res, nil
	}

	// A stored witness (from an earlier probe's annealing walk or a
	// parallel search) that fits this container answers without work.
	if e.Inc != nil {
		if w, src, ok := e.Inc.Dominating(p.C); ok {
			pl := w.Clone()
			if err := pl.Verify(p.In, p.C, p.Order); err != nil {
				return nil, fmt.Errorf("solver: stored incumbent invalid: %w", err)
			}
			res.Decision = Feasible
			res.Placement = pl
			res.DecidedBy = "incumbent"
			res.Elapsed = time.Since(start)
			e.Metrics.Counter(obs.MetricStrategyIncumbentHits).Inc()
			e.Metrics.Counter("opp.decided_by.incumbent").Inc()
			e.traceOPPEnd(res, map[string]any{"incumbent_source": src})
			return res, nil
		}
	}

	// Stage 1: lower bounds.
	if !e.SkipBounds {
		e.notifyPhase(obs.PhaseBounds)
		ssp := e.stageSpan(ctx, obs.PhaseBounds)
		s0 := time.Now()
		bad, why := bounds.OPPInfeasible(p.In, p.C, p.Order)
		res.Stages.Bounds = time.Since(s0)
		ssp.End()
		if bad {
			res.Decision = Infeasible
			res.DecidedBy = "bound: " + why
			res.Elapsed = time.Since(start)
			e.Metrics.Counter("opp.decided_by.bounds").Inc()
			e.traceOPPEnd(res, map[string]any{"bound": why})
			return res, nil
		}
		e.Trace.Emit("stage", map[string]any{
			"phase": obs.PhaseBounds, "outcome": "pass", "elapsed_ms": MS(res.Stages.Bounds),
		})
	}

	// Stage 2: greedy placer (memoized per footprint).
	if !e.SkipHeuristic {
		e.notifyPhase(obs.PhaseHeuristic)
		ssp := e.stageSpan(ctx, obs.PhaseHeuristic)
		s0 := time.Now()
		hp, mk, hok := e.heurWitness(p)
		res.Stages.Heuristic = time.Since(s0)
		ssp.End()
		if hok && mk <= p.C.T {
			pl := hp.Clone()
			if err := pl.Verify(p.In, p.C, p.Order); err != nil {
				return nil, fmt.Errorf("solver: heuristic produced invalid placement: %w", err)
			}
			res.Decision = Feasible
			res.Placement = pl
			res.DecidedBy = "heuristic"
			res.Elapsed = time.Since(start)
			e.Metrics.Counter("opp.decided_by.heuristic").Inc()
			e.traceOPPEnd(res, nil)
			return res, nil
		}
		e.Trace.Emit("stage", map[string]any{
			"phase": obs.PhaseHeuristic, "outcome": "miss", "elapsed_ms": MS(res.Stages.Heuristic),
		})

		// Stage 2½: annealing placer. Only reachable when the greedy
		// placer fits the chip spatially but misses the time budget —
		// annealing cannot fix a spatial misfit.
		if hok {
			e.notifyPhase(obs.PhaseAnneal)
			asp := e.stageSpan(ctx, obs.PhaseAnneal)
			s0 = time.Now()
			ap, amk, aok := e.annealWitness(ctx, p)
			res.Stages.Anneal = time.Since(s0)
			asp.End()
			if aok && amk <= p.C.T {
				pl := ap.Clone()
				if err := pl.Verify(p.In, p.C, p.Order); err != nil {
					return nil, fmt.Errorf("solver: annealer produced invalid placement: %w", err)
				}
				res.Decision = Feasible
				res.Placement = pl
				res.DecidedBy = "anneal"
				res.Elapsed = time.Since(start)
				e.Metrics.Counter("opp.decided_by.anneal").Inc()
				e.traceOPPEnd(res, nil)
				return res, nil
			}
			e.Trace.Emit("stage", map[string]any{
				"phase": obs.PhaseAnneal, "outcome": "miss", "elapsed_ms": MS(res.Stages.Anneal),
			})
		}
	}

	// Stage 3: packing-class branch and bound.
	return e.solveSearch(ctx, p, res, start, nil)
}

// annealWitness returns the annealing placer's best schedule for the
// problem's chip, memoized in the incumbent store when one is
// attached, and records it as a witness for later dominance lookups.
// The returned placement is shared — callers must Clone before
// exposing or mutating it.
func (e *Env) annealWitness(ctx context.Context, p *Problem) (*model.Placement, int, bool) {
	var (
		pl *model.Placement
		mk int
		ok bool
	)
	if e.Inc != nil {
		pl, mk, ok, _ = e.Inc.Anneal(ctx, p.In, p.C.W, p.C.H, p.Order, e.AnnealSeed)
	} else {
		pl, mk, ok = heur.AnnealMinMakespan(ctx, p.In, p.C.W, p.C.H, p.Order, heur.AnnealOptions{Seed: e.AnnealSeed})
	}
	if ok && e.Inc != nil {
		e.Inc.RecordWitness(p.In, pl, "anneal")
	}
	return pl, mk, ok
}
