package strategy

import (
	"context"
	"math/rand"
	"testing"

	"fpga3d/internal/bench"
	"fpga3d/internal/model"
)

// TestAnnealStrategyAgreesWithStaged: the annealing tier only adds
// verified feasible witnesses, so its decisions must match the staged
// pipeline's exactly on every container.
func TestAnnealStrategyAgreesWithStaged(t *testing.T) {
	for seed := int64(0); seed < 25; seed++ {
		rng := rand.New(rand.NewSource(seed))
		in := bench.Random(rng, 4+rng.Intn(6), 3, 3, 0.3)
		order, err := in.Order()
		if err != nil {
			t.Fatal(err)
		}
		for _, c := range []model.Container{
			{W: 4, H: 4, T: in.TotalDuration()},
			{W: 4, H: 4, T: order.CriticalPath()},
			{W: 3, H: 3, T: order.CriticalPath() + 2},
			{W: 2, H: 2, T: 3},
		} {
			if in.MaxW() > c.W || in.MaxH() > c.H {
				continue
			}
			p := &Problem{In: in, C: c, Order: order}
			rs, err := NewStaged(testEnv(1)).Solve(context.Background(), p)
			if err != nil {
				t.Fatal(err)
			}
			ra, err := NewAnneal(testEnv(1)).Solve(context.Background(), p)
			if err != nil {
				t.Fatal(err)
			}
			if rs.Decision != ra.Decision {
				t.Errorf("seed %d container %+v: staged=%v anneal=%v",
					seed, c, rs.Decision, ra.Decision)
			}
			if ra.Decision == Feasible {
				if err := ra.Placement.Verify(in, c, order); err != nil {
					t.Errorf("seed %d container %+v: anneal witness invalid: %v", seed, c, err)
				}
			}
		}
	}
}

// TestAnnealStrategyRecordsWitnesses: an annealing solve must leave
// its witness in the shared store, and a later dominated probe must be
// answered from it without search.
func TestAnnealStrategyRecordsWitnesses(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	in := bench.Random(rng, 8, 3, 4, 0.3)
	order, err := in.Order()
	if err != nil {
		t.Fatal(err)
	}
	env := testEnv(1)
	a := NewAnneal(env)
	// A generous container the greedy heuristic certainly satisfies.
	horizon := in.TotalDuration()
	c := model.Container{W: 8, H: 8, T: horizon}
	r1, err := a.Solve(context.Background(), &Problem{In: in, C: c, Order: order})
	if err != nil {
		t.Fatal(err)
	}
	if r1.Decision != Feasible {
		t.Fatalf("generous container not feasible: %v", r1.Decision)
	}
	// Force the annealing stage on a tight-but-generous-enough repeat:
	// record the witness by hand if stage 2 answered, then check that a
	// dominated container is served from the store.
	if env.Inc.Witnesses() == 0 {
		env.Inc.RecordWitness(in, r1.Placement, "anneal")
	}
	r2, err := a.Solve(context.Background(), &Problem{In: in, C: c, Order: order})
	if err != nil {
		t.Fatal(err)
	}
	if r2.DecidedBy != "incumbent" && r2.DecidedBy != "heuristic" {
		t.Fatalf("repeat probe decided by %q, want incumbent or heuristic", r2.DecidedBy)
	}
	if r2.Decision != Feasible {
		t.Fatalf("repeat probe decision %v", r2.Decision)
	}
}

// TestAnnealStageDecides: on an instance where every greedy rule
// misses the time budget but annealing finds a fitting schedule, the
// anneal stage (or the exact search) must still answer Feasible — and
// when the annealer answers, the result is flagged "anneal" with zero
// search nodes.
func TestAnnealStageDecides(t *testing.T) {
	// Search across seeds for an instance where greedy > optimum-ish
	// budget but annealing closes it; the loop asserts agreement
	// whenever annealing does decide.
	found := false
	for seed := int64(0); seed < 60 && !found; seed++ {
		rng := rand.New(rand.NewSource(seed))
		in := bench.Random(rng, 8+rng.Intn(5), 3, 4, 0.25)
		order, err := in.Order()
		if err != nil {
			t.Fatal(err)
		}
		W, H := 5, 5
		if in.MaxW() > W || in.MaxH() > H {
			continue
		}
		env := testEnv(1)
		_, greedyMk, ok, _ := env.Inc.MinMakespan(in, W, H, order)
		if !ok {
			continue
		}
		// Probe one cycle under the greedy makespan: stage 2 misses by
		// construction.
		c := model.Container{W: W, H: H, T: greedyMk - 1}
		res, err := NewAnneal(env).Solve(context.Background(), &Problem{In: in, C: c, Order: order})
		if err != nil {
			t.Fatal(err)
		}
		if res.DecidedBy == "anneal" {
			found = true
			if res.Decision != Feasible {
				t.Fatalf("seed %d: anneal-decided result not feasible", seed)
			}
			if res.Stats.Nodes != 0 {
				t.Errorf("seed %d: anneal decision expanded %d search nodes", seed, res.Stats.Nodes)
			}
			if err := res.Placement.Verify(in, c, order); err != nil {
				t.Errorf("seed %d: anneal witness invalid: %v", seed, err)
			}
		}
	}
	if !found {
		t.Skip("no seed produced an anneal-decided probe; annealer quality covered elsewhere")
	}
}
