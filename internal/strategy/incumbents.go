package strategy

import (
	"context"
	"sync"

	"fpga3d/internal/heur"
	"fpga3d/internal/model"
)

// Incumbents is the incumbent store shared by every strategy
// invocation of one optimization run. It memoizes the greedy
// heuristic's minimum-makespan placement per chip footprint — the
// sweeps' probes at different time budgets on the same chip then share
// a single stage-2 computation — and records feasible witnesses so a
// later probe whose container dominates a stored witness is answered
// without any work (Portfolio mode).
//
// A store is only meaningful for a single instance: the solver
// attaches a fresh store to each optimization run, and rotation's
// per-orientation sub-solves each get their own. All methods are safe
// for concurrent use.
type Incumbents struct {
	mu     sync.Mutex
	heur   map[[2]int]heurEntry
	anneal map[[2]int]heurEntry
	wits   []witnessEntry

	heurComputes int64
	heurHits     int64
}

// heurEntry memoizes heur.MinMakespan for one chip footprint. The
// equivalence with per-probe heur.Place holds because the list
// scheduler's slot scan is horizon-truncated: Place(W, H, T) succeeds
// iff T ≥ mk, and then returns exactly this placement.
type heurEntry struct {
	place *model.Placement
	mk    int
	ok    bool
}

// witnessEntry records a feasible placement by its bounding box, so
// dominance checks need no rescan of the coordinate arrays.
type witnessEntry struct {
	w, h, mk int
	place    *model.Placement
	source   string
}

// NewIncumbents returns an empty store.
func NewIncumbents() *Incumbents {
	return &Incumbents{
		heur:   make(map[[2]int]heurEntry),
		anneal: make(map[[2]int]heurEntry),
	}
}

// computeMinMakespan is the unmemoized stage-2 computation.
func computeMinMakespan(in *model.Instance, W, H int, o *model.Order) (*model.Placement, int, bool) {
	return heur.MinMakespan(in, W, H, o)
}

// MinMakespan returns the greedy minimum-makespan placement for a W×H
// chip, computing it at most once per footprint. hit reports whether
// the entry was served from the memo. The returned placement is the
// stored one — callers must Clone before exposing or mutating it.
func (s *Incumbents) MinMakespan(in *model.Instance, W, H int, o *model.Order) (place *model.Placement, mk int, ok, hit bool) {
	key := [2]int{W, H}
	s.mu.Lock()
	if e, found := s.heur[key]; found {
		s.heurHits++
		s.mu.Unlock()
		return e.place, e.mk, e.ok, true
	}
	s.mu.Unlock()
	// Compute outside the lock; concurrent probes of the same chip may
	// duplicate the work once, but the result is deterministic so
	// whichever entry lands is the same.
	p, m, k := computeMinMakespan(in, W, H, o)
	s.mu.Lock()
	s.heur[key] = heurEntry{place: p, mk: m, ok: k}
	s.heurComputes++
	s.mu.Unlock()
	return p, m, k, false
}

// Anneal returns the annealing placer's best schedule for a W×H chip,
// computed at most once per footprint with the full iteration budget.
// Memoizing a probe-independent walk (no per-probe early exit) keeps
// the result reusable across a sweep's probes at different time
// budgets: the probe at budget T succeeds iff T ≥ mk, exactly like
// the greedy memo. The walk is deterministic per seed, so concurrent
// duplicate computation stores the same entry. The returned placement
// is the stored one — callers must Clone before exposing or mutating
// it.
func (s *Incumbents) Anneal(ctx context.Context, in *model.Instance, W, H int, o *model.Order, seed int64) (place *model.Placement, mk int, ok, hit bool) {
	key := [2]int{W, H}
	s.mu.Lock()
	if e, found := s.anneal[key]; found {
		s.mu.Unlock()
		return e.place, e.mk, e.ok, true
	}
	s.mu.Unlock()
	p, m, k := heur.AnnealMinMakespan(ctx, in, W, H, o, heur.AnnealOptions{Seed: seed})
	if ctx != nil && ctx.Err() != nil {
		// A truncated walk is still a valid witness, but memoizing it
		// would let one canceled probe degrade every later one.
		return p, m, k, false
	}
	s.mu.Lock()
	s.anneal[key] = heurEntry{place: p, mk: m, ok: k}
	s.mu.Unlock()
	return p, m, k, false
}

// HeurStats returns how often the stage-2 memo computed an entry and
// how often it answered from one.
func (s *Incumbents) HeurStats() (computes, hits int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.heurComputes, s.heurHits
}

// RecordWitness stores a feasible placement together with its bounding
// box so later dominance lookups can reuse it.
func (s *Incumbents) RecordWitness(in *model.Instance, p *model.Placement, source string) {
	if p == nil {
		return
	}
	var w, h, mk int
	for i, t := range in.Tasks {
		if x := p.X[i] + t.W; x > w {
			w = x
		}
		if y := p.Y[i] + t.H; y > h {
			h = y
		}
		if f := p.S[i] + t.Dur; f > mk {
			mk = f
		}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	// Skip the insert if an existing witness already dominates the new
	// one, then drop entries the new witness dominates.
	for _, e := range s.wits {
		if e.w <= w && e.h <= h && e.mk <= mk {
			return // an at-least-as-good witness is already stored
		}
	}
	kept := s.wits[:0]
	for _, e := range s.wits {
		if !(w <= e.w && h <= e.h && mk <= e.mk) {
			kept = append(kept, e)
		}
	}
	s.wits = append(kept, witnessEntry{w: w, h: h, mk: mk, place: p, source: source})
}

// Dominating returns a stored feasible witness that fits container c
// (bounding box within W×H, makespan within T), or ok=false. The
// placement is shared — callers must Clone before exposing it.
func (s *Incumbents) Dominating(c model.Container) (place *model.Placement, source string, ok bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, e := range s.wits {
		if e.w <= c.W && e.h <= c.H && e.mk <= c.T {
			return e.place, e.source, true
		}
	}
	return nil, "", false
}

// Witnesses returns the number of stored (non-dominated) witnesses.
func (s *Incumbents) Witnesses() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.wits)
}
