package strategy

import (
	"context"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"

	"fpga3d/internal/bench"
	"fpga3d/internal/model"
)

// TestIncumbentsRaceStress hammers one Incumbents store the way an
// anytime run does: racing probes offering witnesses and looking up
// dominance/memos concurrently with a background refiner that keeps
// recording strictly improving incumbents. Run under -race (the CI
// race set includes this package), this is the contention profile the
// anytime tier introduces — before it, the store only saw the
// portfolio's few racing goroutines.
func TestIncumbentsRaceStress(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	in := bench.Random(rng, 10, 3, 4, 0.3)
	order, err := in.Order()
	if err != nil {
		t.Fatal(err)
	}
	s := NewIncumbents()
	ctx := context.Background()

	var wg sync.WaitGroup
	var stop atomic.Bool

	// Background refiner: records a stream of strictly improving
	// witnesses for one chip, the way the anytime driver feeds
	// annealing and search incumbents back into the store.
	wg.Add(1)
	go func() {
		defer wg.Done()
		pl, mk, ok, _ := s.MinMakespan(in, 8, 8, order)
		if !ok {
			return
		}
		for better := mk + 20; better >= mk && !stop.Load(); better-- {
			w := pl.Clone()
			// Shift the last task later to vary the bounding box the
			// dominance pruner sees; the store only reads coordinates.
			w.S[in.N()-1] = better - in.Tasks[in.N()-1].Dur
			s.RecordWitness(in, w, "refiner")
		}
	}()

	// Racing probes: concurrent memo lookups (greedy and anneal),
	// witness offers, and dominance queries across many footprints.
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 60; i++ {
				w := 4 + (g+i)%5
				if _, _, ok, _ := s.MinMakespan(in, w, w, order); ok {
					if pl, mk, ok, _ := s.Anneal(ctx, in, w, w, order, int64(g+1)); ok {
						_ = mk
						s.RecordWitness(in, pl, "anneal")
					}
				}
				s.Dominating(model.Container{W: w, H: w, T: 10 + i%7})
				s.HeurStats()
				s.Witnesses()
			}
		}(g)
	}
	wg.Wait()
	stop.Store(true)

	// The store must have converged to a consistent state: every
	// surviving witness verifies on a container matching its own
	// bounding box, and none dominates another (the pruner's
	// invariant).
	if n := s.Witnesses(); n < 1 {
		t.Fatalf("Witnesses() = %d, want ≥ 1", n)
	}
	s.mu.Lock()
	wits := append([]witnessEntry(nil), s.wits...)
	s.mu.Unlock()
	for i, e := range wits {
		c := model.Container{W: e.w, H: e.h, T: e.mk}
		if err := e.place.Verify(in, c, order); err != nil {
			t.Errorf("witness %d (%s) invalid on its own bounding box: %v", i, e.source, err)
		}
		for j, f := range wits {
			if i != j && e.w <= f.w && e.h <= f.h && e.mk <= f.mk {
				t.Errorf("witness %d dominates surviving witness %d", i, j)
			}
		}
	}
}

// TestIncumbentsAnnealMemoDeterministic: concurrent Anneal calls on
// one footprint must all observe the same schedule — the memo's
// "duplicate compute stores the same entry" contract depends on the
// annealer's per-seed determinism.
func TestIncumbentsAnnealMemoDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	in := bench.Random(rng, 9, 3, 4, 0.3)
	order, err := in.Order()
	if err != nil {
		t.Fatal(err)
	}
	s := NewIncumbents()
	ctx := context.Background()
	const goroutines = 6
	mks := make([]int, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			_, mk, ok, _ := s.Anneal(ctx, in, 7, 7, order, 42)
			if !ok {
				t.Errorf("goroutine %d: anneal failed", g)
				return
			}
			mks[g] = mk
		}(g)
	}
	wg.Wait()
	for g := 1; g < goroutines; g++ {
		if mks[g] != mks[0] {
			t.Fatalf("concurrent anneal memo returned different makespans: %v", mks)
		}
	}
	// A later call is a memo hit.
	if _, _, _, hit := s.Anneal(ctx, in, 7, 7, order, 42); !hit {
		t.Error("second Anneal call on the same footprint was not a memo hit")
	}
}
