package strategy

import (
	"context"
	"fmt"
	"time"

	"fpga3d/internal/bounds"
	"fpga3d/internal/core"
	"fpga3d/internal/model"
	"fpga3d/internal/obs"
)

// Portfolio shares incumbents across the probes of an optimization
// run. Before running any stage it consults the incumbent store: a
// previously recorded feasible witness whose bounding box and makespan
// fit the probed container answers the probe outright ("incumbent",
// zero search nodes). Otherwise it runs the three stages — sequentially
// with one worker, or, with more, racing the cheap prover (bounds +
// heuristic) against the exact search and taking the first definitive
// answer. Every feasible answer is recorded back into the store, so
// one sweep step seeds the next.
//
// Portfolio answers are exact (a dominated probe is answered by a
// genuine witness; racing only reorders work), but statistics are not
// bit-identical to Staged: dominated probes spend no search nodes, and
// a lost race contributes the partial effort of its canceled search.
type Portfolio struct {
	env *Env
}

// NewPortfolio returns the incumbent-sharing portfolio strategy over
// env.
func NewPortfolio(env *Env) *Portfolio { return &Portfolio{env: env} }

// Name returns NamePortfolio.
func (s *Portfolio) Name() string { return NamePortfolio }

// Solve decides the problem with incumbent dominance, then either the
// sequential stages or a prover-versus-search race.
func (s *Portfolio) Solve(ctx context.Context, p *Problem) (*Result, error) {
	e := s.env
	if p.FixedStarts != nil {
		// Stored witnesses do not respect prescribed start times, so
		// the fixed-schedule variant goes straight to the spatial
		// search, exactly as in Staged.
		return e.solveFixed(ctx, p, map[string]any{"strategy": NamePortfolio})
	}
	start := time.Now()
	res := &Result{}
	ctx, osp := e.oppSpan(ctx, p)
	defer func() { e.endOPPSpan(osp, res) }()
	e.Metrics.Counter("opp.calls").Inc()
	e.Trace.Emit("opp_start", map[string]any{
		"instance": p.In.Name, "n": p.In.N(), "W": p.C.W, "H": p.C.H, "T": p.C.T,
		"strategy": NamePortfolio,
	})
	if ctx.Err() != nil {
		res.Decision = Unknown
		res.DecidedBy = "canceled"
		res.Elapsed = time.Since(start)
		e.Metrics.Counter("opp.decided_by.canceled").Inc()
		e.traceOPPEnd(res, nil)
		return res, nil
	}

	// Incumbent dominance: a witness from an earlier probe of this run
	// that fits the container decides feasibility with zero work.
	if e.Inc != nil {
		if wit, src, ok := e.Inc.Dominating(p.C); ok {
			pl := wit.Clone()
			if err := pl.Verify(p.In, p.C, p.Order); err != nil {
				return nil, fmt.Errorf("solver: incumbent witness invalid: %w", err)
			}
			res.Decision = Feasible
			res.Placement = pl
			res.DecidedBy = "incumbent"
			res.Elapsed = time.Since(start)
			e.Metrics.Counter("opp.decided_by.incumbent").Inc()
			e.Metrics.Counter(obs.MetricStrategyIncumbentHits).Inc()
			e.traceOPPEnd(res, map[string]any{"incumbent_source": src})
			return res, nil
		}
	}

	if e.Workers > 1 {
		return s.race(ctx, p, res, start)
	}

	// Sequential stages, as in Staged, but recording witnesses.
	if !e.SkipBounds {
		e.notifyPhase(obs.PhaseBounds)
		ssp := e.stageSpan(ctx, obs.PhaseBounds)
		s0 := time.Now()
		bad, why := bounds.OPPInfeasible(p.In, p.C, p.Order)
		res.Stages.Bounds = time.Since(s0)
		ssp.End()
		if bad {
			res.Decision = Infeasible
			res.DecidedBy = "bound: " + why
			res.Elapsed = time.Since(start)
			e.Metrics.Counter("opp.decided_by.bounds").Inc()
			e.traceOPPEnd(res, map[string]any{"bound": why})
			return res, nil
		}
		e.Trace.Emit("stage", map[string]any{
			"phase": obs.PhaseBounds, "outcome": "pass", "elapsed_ms": MS(res.Stages.Bounds),
		})
	}
	if !e.SkipHeuristic {
		e.notifyPhase(obs.PhaseHeuristic)
		ssp := e.stageSpan(ctx, obs.PhaseHeuristic)
		s0 := time.Now()
		hp, mk, hok := e.heurWitness(p)
		res.Stages.Heuristic = time.Since(s0)
		ssp.End()
		if hok && mk <= p.C.T {
			pl := hp.Clone()
			if err := pl.Verify(p.In, p.C, p.Order); err != nil {
				return nil, fmt.Errorf("solver: heuristic produced invalid placement: %w", err)
			}
			s.record(p.In, pl, "heuristic")
			res.Decision = Feasible
			res.Placement = pl
			res.DecidedBy = "heuristic"
			res.Elapsed = time.Since(start)
			e.Metrics.Counter("opp.decided_by.heuristic").Inc()
			e.traceOPPEnd(res, nil)
			return res, nil
		}
		e.Trace.Emit("stage", map[string]any{
			"phase": obs.PhaseHeuristic, "outcome": "miss", "elapsed_ms": MS(res.Stages.Heuristic),
		})
	}
	out, err := e.solveSearch(ctx, p, res, start, nil)
	if err == nil && out.Decision == Feasible {
		s.record(p.In, out.Placement, "search")
	}
	return out, err
}

// record stores a feasible witness in the incumbent store, if one is
// attached.
func (s *Portfolio) record(in *model.Instance, pl *model.Placement, source string) {
	if s.env.Inc != nil {
		s.env.Inc.RecordWitness(in, pl, source)
	}
}

// raceAnswer is one contender's outcome in a prover-versus-search
// race.
type raceAnswer struct {
	res   *Result
	err   error
	from  string // "prover" or "search"
	extra map[string]any
}

// decided reports whether the answer settles the question.
func (a raceAnswer) decided() bool {
	return a.err == nil && (a.res.Decision == Feasible || a.res.Decision == Infeasible)
}

// race runs the cheap prover (bounds, then heuristic) concurrently
// with the exact search; the first definitive answer wins and cancels
// the other contender. The canceled search's partial statistics are
// merged into the result, so the node accounting stays the sum of all
// shards.
func (s *Portfolio) race(ctx context.Context, p *Problem, res *Result, start time.Time) (*Result, error) {
	e := s.env
	sctx, cancel := context.WithCancel(ctx)
	defer cancel()
	e.notifyPhase(obs.PhaseSearch)
	ch := make(chan raceAnswer, 2)

	go func() { // prover: stage 1 then stage 2
		psp := e.stageSpan(ctx, "prover")
		defer psp.End()
		pr := &Result{}
		if !e.SkipBounds {
			s0 := time.Now()
			bad, why := bounds.OPPInfeasible(p.In, p.C, p.Order)
			pr.Stages.Bounds = time.Since(s0)
			if bad {
				pr.Decision = Infeasible
				pr.DecidedBy = "bound: " + why
				ch <- raceAnswer{res: pr, from: "prover", extra: map[string]any{"bound": why}}
				return
			}
		}
		if !e.SkipHeuristic {
			s0 := time.Now()
			hp, mk, hok := e.heurWitness(p)
			pr.Stages.Heuristic = time.Since(s0)
			if hok && mk <= p.C.T {
				pl := hp.Clone()
				if err := pl.Verify(p.In, p.C, p.Order); err != nil {
					ch <- raceAnswer{err: fmt.Errorf("solver: heuristic produced invalid placement: %w", err), from: "prover"}
					return
				}
				pr.Decision = Feasible
				pr.Placement = pl
				pr.DecidedBy = "heuristic"
				ch <- raceAnswer{res: pr, from: "prover"}
				return
			}
		}
		pr.Decision = Unknown // inconclusive: neither bound nor witness
		ch <- raceAnswer{res: pr, from: "prover"}
	}()

	go func() { // exact search under the cancelable sub-context
		ssp := e.stageSpan(sctx, obs.PhaseSearch)
		defer ssp.End()
		sr := &Result{}
		// A task exceeding the container in some dimension is trivially
		// infeasible; the engine treats such input as a programmer error
		// (stage 1 screens it in the sequential pipeline), so the racing
		// search screens it itself rather than relying on the prover.
		for _, t := range p.In.Tasks {
			if t.W > p.C.W || t.H > p.C.H || t.Dur > p.C.T {
				sr.Decision = Infeasible
				sr.DecidedBy = "search"
				ch <- raceAnswer{res: sr, from: "search"}
				return
			}
		}
		s0 := time.Now()
		prob := BuildProblem(p.In, p.C, p.Order, nil)
		r := core.Solve(prob, e.searchOpts(sctx, p))
		sr.Stages.Search = time.Since(s0)
		sr.Stats = r.Stats
		e.Metrics.Counter(obs.MetricSearchNodes).Add(r.Stats.Nodes)
		e.Metrics.Counter(obs.MetricSearchPropagations).Add(r.Stats.Propagations)
		switch r.Status {
		case core.StatusFeasible:
			pl := SolutionToPlacement(r.Solution)
			if err := pl.Verify(p.In, p.C, p.Order); err != nil {
				ch <- raceAnswer{err: fmt.Errorf("solver: search produced invalid placement: %w", err), from: "search"}
				return
			}
			sr.Decision = Feasible
			sr.Placement = pl
			sr.DecidedBy = "search"
		case core.StatusInfeasible:
			sr.Decision = Infeasible
			sr.DecidedBy = "search"
		case core.StatusCanceled:
			sr.Decision = Unknown
			sr.DecidedBy = "canceled"
		default:
			sr.Decision = Unknown
			sr.DecidedBy = "limit"
		}
		ch <- raceAnswer{res: sr, from: "search"}
	}()

	var winner *raceAnswer
	var fallback *raceAnswer // the search's undecided answer, if any
	for i := 0; i < 2; i++ {
		a := <-ch
		if a.err != nil {
			cancel()
			for j := i + 1; j < 2; j++ {
				<-ch // drain so the goroutine can exit
			}
			return nil, a.err
		}
		res.Stats.Add(a.res.Stats)
		res.Stages.Add(a.res.Stages)
		if a.decided() && winner == nil {
			w := a
			winner = &w
			cancel() // first definitive answer wins; stop the loser
		} else if a.from == "search" && winner == nil {
			w := a
			fallback = &w
		}
	}

	extra := map[string]any{"race": true}
	switch {
	case winner != nil:
		res.Decision = winner.res.Decision
		res.Placement = winner.res.Placement
		res.DecidedBy = winner.res.DecidedBy
		extra["race_winner"] = winner.from
		for k, v := range winner.extra {
			extra[k] = v
		}
	case fallback != nil:
		// Neither contender decided: the search's limit/cancel outcome
		// is the run's outcome.
		res.Decision = Unknown
		res.DecidedBy = fallback.res.DecidedBy
	default:
		res.Decision = Unknown
		res.DecidedBy = "canceled"
	}
	res.Elapsed = time.Since(start)
	e.Metrics.Counter("opp.decided_by." + decidedByCounter(res.DecidedBy)).Inc()
	e.traceOPPEnd(res, extra)
	if res.Decision == Feasible {
		s.record(p.In, res.Placement, res.DecidedBy)
	}
	return res, nil
}

// decidedByCounter maps a DecidedBy label to its metric counter
// suffix ("bound: volume" → "bounds").
func decidedByCounter(decidedBy string) string {
	if len(decidedBy) >= 5 && decidedBy[:5] == "bound" {
		return "bounds"
	}
	return decidedBy
}
