package strategy

import (
	"fpga3d/internal/core"
	"fpga3d/internal/model"
)

// BuildProblem translates an instance+container into the engine's
// three-dimensional problem. fixedStarts, when non-nil, freezes the time
// dimension according to the given schedule (the FixedS variants).
func BuildProblem(in *model.Instance, c model.Container, order *model.Order, fixedStarts []int) *core.Problem {
	n := in.N()
	ws := make([]int, n)
	hs := make([]int, n)
	ds := make([]int, n)
	for i, t := range in.Tasks {
		ws[i], hs[i], ds[i] = t.W, t.H, t.Dur
	}
	p := &core.Problem{
		N: n,
		Dims: []core.Dim{
			{Cap: c.W, Sizes: ws},
			{Cap: c.H, Sizes: hs},
			{Cap: c.T, Sizes: ds, Ordered: true},
		},
	}
	const timeDim = 2
	if fixedStarts != nil {
		for u := 0; u < n; u++ {
			for v := u + 1; v < n; v++ {
				su, eu := fixedStarts[u], fixedStarts[u]+in.Tasks[u].Dur
				sv, ev := fixedStarts[v], fixedStarts[v]+in.Tasks[v].Dur
				if su < ev && sv < eu {
					p.Fixed = append(p.Fixed, core.FixedEdge{Dim: timeDim, U: u, V: v, State: core.Overlap})
				} else if eu <= sv {
					p.Seeds = append(p.Seeds, core.SeedArc{Dim: timeDim, From: u, To: v})
				} else {
					p.Seeds = append(p.Seeds, core.SeedArc{Dim: timeDim, From: v, To: u})
				}
			}
		}
		return p
	}
	cl := order.Closure()
	for u := 0; u < n; u++ {
		uu := u
		cl.Out(uu).ForEach(func(v int) {
			p.Seeds = append(p.Seeds, core.SeedArc{Dim: timeDim, From: uu, To: v})
		})
	}
	return p
}

// SolutionToPlacement lifts an engine solution's coordinate arrays into
// a placement.
func SolutionToPlacement(s *core.Solution) *model.Placement {
	return &model.Placement{
		X: append([]int(nil), s.Coords[0]...),
		Y: append([]int(nil), s.Coords[1]...),
		S: append([]int(nil), s.Coords[2]...),
	}
}
