package strategy

import (
	"context"
	"fmt"
	"time"

	"fpga3d/internal/bounds"
	"fpga3d/internal/core"
	"fpga3d/internal/obs"
)

// Staged is the paper's sequential short-circuit pipeline: stage 1
// tries to disprove feasibility with fast lower bounds, stage 2 tries
// to find a feasible packing with the greedy heuristic, and only then
// does stage 3 run the branch-and-bound search over packing classes.
// It is the default strategy and reproduces the historical solver
// pipeline bit for bit: decisions, witnesses, engine statistics and
// trace events are identical.
type Staged struct {
	env *Env
}

// NewStaged returns the sequential short-circuit strategy over env.
func NewStaged(env *Env) *Staged { return &Staged{env: env} }

// Name returns NameStaged.
func (s *Staged) Name() string { return NameStaged }

// Solve runs bounds → heuristic → search with short-circuit
// evaluation. A nil error with Decision Unknown means a limit or
// cancellation.
func (s *Staged) Solve(ctx context.Context, p *Problem) (*Result, error) {
	if p.FixedStarts != nil {
		return s.env.solveFixed(ctx, p, nil)
	}
	e := s.env
	start := time.Now()
	res := &Result{}
	ctx, osp := e.oppSpan(ctx, p)
	defer func() { e.endOPPSpan(osp, res) }()
	e.Metrics.Counter("opp.calls").Inc()
	e.Trace.Emit("opp_start", map[string]any{
		"instance": p.In.Name, "n": p.In.N(), "W": p.C.W, "H": p.C.H, "T": p.C.T,
	})

	// A probe whose context is already dead spends no effort at all;
	// the racing drivers rely on this to discard queued probes cheaply,
	// and CLI deadlines rely on it to cut off between probes.
	if ctx.Err() != nil {
		res.Decision = Unknown
		res.DecidedBy = "canceled"
		res.Elapsed = time.Since(start)
		e.Metrics.Counter("opp.decided_by.canceled").Inc()
		e.traceOPPEnd(res, nil)
		return res, nil
	}

	// Stage 1: lower bounds.
	if !e.SkipBounds {
		e.notifyPhase(obs.PhaseBounds)
		ssp := e.stageSpan(ctx, obs.PhaseBounds)
		s0 := time.Now()
		bad, why := bounds.OPPInfeasible(p.In, p.C, p.Order)
		res.Stages.Bounds = time.Since(s0)
		ssp.End()
		if bad {
			res.Decision = Infeasible
			res.DecidedBy = "bound: " + why
			res.Elapsed = time.Since(start)
			e.Metrics.Counter("opp.decided_by.bounds").Inc()
			e.traceOPPEnd(res, map[string]any{"bound": why})
			return res, nil
		}
		e.Trace.Emit("stage", map[string]any{
			"phase": obs.PhaseBounds, "outcome": "pass", "elapsed_ms": MS(res.Stages.Bounds),
		})
	}
	// Stage 2: greedy placer. The minimum-makespan placement for this
	// chip footprint is memoized in the incumbent store (when one is
	// attached): the list scheduler's slot scan is horizon-truncated,
	// so the probe at time budget T succeeds iff T ≥ mk, and then with
	// exactly the memoized placement — sweeps over T on one chip share
	// a single stage-2 computation without changing any answer.
	if !e.SkipHeuristic {
		e.notifyPhase(obs.PhaseHeuristic)
		ssp := e.stageSpan(ctx, obs.PhaseHeuristic)
		s0 := time.Now()
		hp, mk, hok := e.heurWitness(p)
		res.Stages.Heuristic = time.Since(s0)
		ssp.End()
		if hok && mk <= p.C.T {
			pl := hp.Clone()
			if err := pl.Verify(p.In, p.C, p.Order); err != nil {
				return nil, fmt.Errorf("solver: heuristic produced invalid placement: %w", err)
			}
			res.Decision = Feasible
			res.Placement = pl
			res.DecidedBy = "heuristic"
			res.Elapsed = time.Since(start)
			e.Metrics.Counter("opp.decided_by.heuristic").Inc()
			e.traceOPPEnd(res, nil)
			return res, nil
		}
		e.Trace.Emit("stage", map[string]any{
			"phase": obs.PhaseHeuristic, "outcome": "miss", "elapsed_ms": MS(res.Stages.Heuristic),
		})
	}
	// Stage 3: packing-class branch and bound.
	return e.solveSearch(ctx, p, res, start, nil)
}

// searchOpts returns the stage-3 engine options for problem p. When the
// engine will run a parallel (work-stealing) search and an incumbent
// store is attached, the pool's OnSolution hook broadcasts the winning
// witness into the store the moment a worker finds it — so concurrent
// sweep probes can already prune on it while this probe is still
// assembling its result. The hook verifies before recording; an invalid
// witness is dropped here and surfaces as an error on the main path.
func (e *Env) searchOpts(ctx context.Context, p *Problem) core.Options {
	co := e.SearchOpts(ctx)
	if co.Workers > 1 && e.Inc != nil {
		in, c, order, inc := p.In, p.C, p.Order, e.Inc
		co.OnSolution = func(sol *core.Solution) {
			pl := SolutionToPlacement(sol)
			if pl.Verify(in, c, order) == nil {
				inc.RecordWitness(in, pl, "search-parallel")
			}
		}
	}
	return co
}

// solveSearch runs stage 3 on a prepared result (stage timings of the
// earlier stages already recorded) and finishes the trace bracket.
// extra is merged into the opp_end event.
func (e *Env) solveSearch(ctx context.Context, p *Problem, res *Result, start time.Time, extra map[string]any) (*Result, error) {
	e.notifyPhase(obs.PhaseSearch)
	e.Trace.Emit("stage", map[string]any{"phase": obs.PhaseSearch})
	ssp := e.stageSpan(ctx, obs.PhaseSearch)
	s0 := time.Now()
	prob := BuildProblem(p.In, p.C, p.Order, nil)
	r := core.Solve(prob, e.searchOpts(ctx, p))
	res.Stages.Search = time.Since(s0)
	ssp.End()
	res.Stats = r.Stats
	res.Elapsed = time.Since(start)
	e.Metrics.Counter(obs.MetricSearchNodes).Add(r.Stats.Nodes)
	e.Metrics.Counter(obs.MetricSearchPropagations).Add(r.Stats.Propagations)
	switch r.Status {
	case core.StatusFeasible:
		pl := SolutionToPlacement(r.Solution)
		if err := pl.Verify(p.In, p.C, p.Order); err != nil {
			return nil, fmt.Errorf("solver: search produced invalid placement: %w", err)
		}
		res.Decision = Feasible
		res.Placement = pl
		res.DecidedBy = "search"
		e.Metrics.Counter("opp.decided_by.search").Inc()
	case core.StatusInfeasible:
		res.Decision = Infeasible
		res.DecidedBy = "search"
		e.Metrics.Counter("opp.decided_by.search").Inc()
	case core.StatusCanceled:
		res.Decision = Unknown
		res.DecidedBy = "canceled"
		e.Metrics.Counter("opp.decided_by.canceled").Inc()
	default:
		res.Decision = Unknown
		res.DecidedBy = "limit"
		e.Metrics.Counter("opp.decided_by.limit").Inc()
	}
	e.traceOPPEnd(res, extra)
	return res, nil
}

// solveFixed decides the FixedS variant: with every start time
// prescribed the search degenerates to the two spatial dimensions, so
// stages 1 and 2 are skipped. The caller has already validated the
// schedule. extra is merged into the opp_end event.
func (e *Env) solveFixed(ctx context.Context, p *Problem, extra map[string]any) (*Result, error) {
	start := time.Now()
	res := &Result{}
	ctx, osp := e.oppSpan(ctx, p)
	defer func() { e.endOPPSpan(osp, res) }()
	e.Metrics.Counter("opp.calls").Inc()
	e.Trace.Emit("opp_start", map[string]any{
		"instance": p.In.Name, "n": p.In.N(), "W": p.C.W, "H": p.C.H, "T": p.C.T, "fixed_schedule": true,
	})
	e.notifyPhase(obs.PhaseSearch)
	ssp := e.stageSpan(ctx, obs.PhaseSearch)
	defer ssp.End()
	prob := BuildProblem(p.In, p.C, p.Order, p.FixedStarts)
	r := core.Solve(prob, e.SearchOpts(ctx))
	res.Stats = r.Stats
	res.Elapsed = time.Since(start)
	res.Stages.Search = res.Elapsed
	e.Metrics.Counter(obs.MetricSearchNodes).Add(r.Stats.Nodes)
	e.Metrics.Counter(obs.MetricSearchPropagations).Add(r.Stats.Propagations)
	switch r.Status {
	case core.StatusFeasible:
		// The engine realizes some schedule with the same component
		// graph and orientation; the prescribed start times are another
		// realization of it, so the spatial coordinates carry over.
		pl := SolutionToPlacement(r.Solution)
		pl.S = append([]int(nil), p.FixedStarts...)
		if err := pl.Verify(p.In, p.C, p.Order); err != nil {
			return nil, fmt.Errorf("solver: fixed-schedule placement invalid: %w", err)
		}
		res.Decision = Feasible
		res.Placement = pl
		res.DecidedBy = "search"
		e.Metrics.Counter("opp.decided_by.search").Inc()
	case core.StatusInfeasible:
		res.Decision = Infeasible
		res.DecidedBy = "search"
		e.Metrics.Counter("opp.decided_by.search").Inc()
	case core.StatusCanceled:
		res.Decision = Unknown
		res.DecidedBy = "canceled"
		e.Metrics.Counter("opp.decided_by.canceled").Inc()
	default:
		res.Decision = Unknown
		res.DecidedBy = "limit"
		e.Metrics.Counter("opp.decided_by.limit").Inc()
	}
	e.traceOPPEnd(res, extra)
	return res, nil
}
