// Package strategy turns the paper's three-stage recipe — fast lower
// bounds (stage 1), greedy list-scheduling heuristic (stage 2), exact
// branch-and-bound over packing classes (stage 3) — into first-class,
// composable solve strategies.
//
// Historically the staging was hard-wired into internal/solver's OPP
// driver, and every optimization sweep re-derived its own slice of it.
// Here each stage is an adapter over the corresponding package
// (internal/bounds, internal/heur, internal/core), and two combinators
// compose them:
//
//   - Staged runs the stages sequentially with short-circuit
//     evaluation — bit-identical to the historical pipeline (same
//     decisions, witnesses, engine statistics and trace events).
//   - Portfolio shares incumbents across probes: a feasible witness
//     recorded by one probe answers later dominated probes outright,
//     and with more than one worker the cheap prover (bounds +
//     heuristic) races the exact search, first definitive answer wins.
//
// Strategies of one optimization run share an Incumbents store, so the
// heuristic's minimum-makespan placement for a chip is computed once
// and reused by every probe on that chip, and feasibility answers from
// one sweep step seed the next (the follow-up paper "Higher-Dimensional
// Packing with Order Constraints" treats the stages as exactly this
// kind of interchangeable component).
package strategy

import (
	"context"
	"fmt"
	"strings"
	"time"

	"fpga3d/internal/core"
	"fpga3d/internal/model"
	"fpga3d/internal/obs"
)

// Decision is the three-valued outcome of a decision problem.
type Decision int

const (
	// Unknown means the solver hit a node or time limit.
	Unknown Decision = iota
	// Feasible means a placement was found (and verified).
	Feasible
	// Infeasible means no placement exists.
	Infeasible
)

// String names the decision: "feasible", "infeasible" or "unknown".
func (d Decision) String() string {
	switch d {
	case Feasible:
		return "feasible"
	case Infeasible:
		return "infeasible"
	default:
		return "unknown"
	}
}

// Strategy names accepted by Parse and the solver's Options.Strategy
// knob (the empty string selects NameStaged).
const (
	// NameStaged selects the sequential short-circuit pipeline.
	NameStaged = "staged"
	// NamePortfolio selects incumbent-sharing portfolio solving.
	NamePortfolio = "portfolio"
	// NameAnneal selects the staged pipeline with a randomized
	// annealing placer between the greedy heuristic and the exact
	// search.
	NameAnneal = "anneal"
)

// Valid reports whether name selects a known strategy; the empty
// string is valid and means the default (staged).
func Valid(name string) bool {
	switch name {
	case "", NameStaged, NamePortfolio, NameAnneal:
		return true
	}
	return false
}

// Names lists the accepted non-empty strategy names.
func Names() []string { return []string{NameStaged, NamePortfolio, NameAnneal} }

// Parse resolves a strategy name ("", NameStaged, NamePortfolio or
// NameAnneal) against an environment.
func Parse(name string, env *Env) (Strategy, error) {
	switch name {
	case "", NameStaged:
		return NewStaged(env), nil
	case NamePortfolio:
		return NewPortfolio(env), nil
	case NameAnneal:
		return NewAnneal(env), nil
	}
	return nil, fmt.Errorf("strategy: unknown strategy %q (valid: %s)", name, strings.Join(Names(), ", "))
}

// Problem is one orthogonal packing question: does instance In fit
// container C under the precedence order Order?
type Problem struct {
	// In is the instance; Order must be its precedence order.
	In    *model.Instance
	C     model.Container
	Order *model.Order
	// FixedStarts, when non-nil, prescribes every task's start time
	// (the FixedS problem variants): stages 1 and 2 are skipped and the
	// search degenerates to the two spatial dimensions.
	FixedStarts []int
}

// Result is the outcome of one orthogonal packing decision.
type Result struct {
	Decision  Decision
	Placement *model.Placement // non-nil iff Decision == Feasible
	// DecidedBy names the stage that settled the question:
	// "bound: <name>", "heuristic", "anneal", "incumbent", or
	// "search".
	DecidedBy string
	Stats     core.Stats
	// Stages breaks Elapsed down into per-stage wall-clock durations.
	Stages  StageTimings
	Elapsed time.Duration
}

// Strategy decides orthogonal packing problems by composing the
// three stages of the paper's framework.
type Strategy interface {
	// Name returns the strategy's registry name.
	Name() string
	// Solve decides the problem. A nil error with Decision Unknown
	// means a node/time limit or cancellation, not a failure.
	Solve(ctx context.Context, p *Problem) (*Result, error)
}

// Env carries the run-scoped machinery a strategy needs: engine
// options for stage 3, observability sinks, and the shared incumbent
// store. The solver package builds one Env per optimization run from
// its Options.
type Env struct {
	// SearchOpts builds the engine options for a stage-3 search under
	// ctx (limits, ablation switches, progress/trace/metric chaining).
	SearchOpts func(ctx context.Context) core.Options
	// SkipBounds disables stage 1, SkipHeuristic stage 2.
	SkipBounds    bool
	SkipHeuristic bool
	// Workers bounds intra-solve concurrency; Portfolio races its
	// prover against the search only when Workers > 1.
	Workers int
	// Progress receives stage-transition snapshots (may be nil).
	Progress obs.ProgressFunc
	// Trace receives structured JSONL events (may be nil).
	Trace *obs.Tracer
	// Metrics accumulates counters across solves (may be nil).
	Metrics *obs.Registry
	// Inc is the incumbent store shared by all strategy invocations of
	// one optimization run. It is only meaningful for a single
	// instance; nil disables sharing (every probe recomputes).
	Inc *Incumbents
	// AnnealSeed seeds the randomized annealing placer (Anneal
	// strategy and the anytime tier); zero means seed 1. The annealer
	// is deterministic per seed.
	AnnealSeed int64
}

// notifyPhase delivers a stage-transition snapshot to the Progress
// hook, so live tickers can show which stage a solve is in even before
// the first node-cadence snapshot arrives.
func (e *Env) notifyPhase(phase string) {
	if e.Progress != nil {
		e.Progress(obs.Snapshot{Phase: phase})
	}
}

// oppSpan opens the "opp" span of one probe — a child of whatever span
// the caller's context carries (the optimization driver's, which in
// fpgad descends from the request span), rooted in e.Trace otherwise.
// With no tracer reachable it costs one context lookup and returns a
// nil span.
func (e *Env) oppSpan(ctx context.Context, p *Problem) (context.Context, *obs.Span) {
	ctx, sp := obs.StartSpan(ctx, e.Trace, "opp")
	if sp != nil {
		sp.SetAttr("W", p.C.W)
		sp.SetAttr("H", p.C.H)
		sp.SetAttr("T", p.C.T)
	}
	return ctx, sp
}

// endOPPSpan finishes a probe's span with its outcome.
func (e *Env) endOPPSpan(sp *obs.Span, res *Result) {
	if sp == nil {
		return
	}
	sp.SetAttr("decision", res.Decision.String())
	sp.SetAttr("decided_by", res.DecidedBy)
	sp.End()
}

// stageSpan opens a "stage" span for one stage of the three-stage
// framework, parented to the probe span in ctx (nil when untraced).
func (e *Env) stageSpan(ctx context.Context, phase string) *obs.Span {
	_, sp := obs.StartSpan(ctx, nil, "stage")
	sp.SetAttr("phase", phase)
	return sp
}

// heurWitness returns the greedy minimum-makespan placement for the
// problem's chip, memoized in the incumbent store when one is
// attached. ok is false only if some task does not fit the chip
// spatially. The returned placement is shared — callers must Clone
// before exposing or mutating it.
func (e *Env) heurWitness(p *Problem) (*model.Placement, int, bool) {
	if e.Inc == nil {
		return computeMinMakespan(p.In, p.C.W, p.C.H, p.Order)
	}
	pl, mk, ok, hit := e.Inc.MinMakespan(p.In, p.C.W, p.C.H, p.Order)
	if hit {
		e.Metrics.Counter(obs.MetricStrategyHeurHits).Inc()
	} else {
		e.Metrics.Counter(obs.MetricStrategyHeurComputes).Inc()
	}
	return pl, mk, ok
}

// traceOPPEnd records the outcome of one OPP decision: an opp_end
// trace event (with full engine stats when the search ran) and the
// per-decision metric counter.
func (e *Env) traceOPPEnd(res *Result, extra map[string]any) {
	e.Metrics.Counter("opp." + res.Decision.String()).Inc()
	if e.Trace == nil {
		return
	}
	f := map[string]any{
		"decision":   res.Decision.String(),
		"decided_by": res.DecidedBy,
		"nodes":      res.Stats.Nodes,
		"elapsed_ms": MS(res.Elapsed),
		"stages_ms":  StagesMS(res.Stages),
	}
	if res.DecidedBy == "search" || res.DecidedBy == "limit" {
		f["stats"] = res.Stats
	}
	for k, v := range extra {
		f[k] = v
	}
	e.Trace.Emit("opp_end", f)
}
