package strategy

import (
	"context"
	"sync"
	"testing"

	"fpga3d/internal/core"
	"fpga3d/internal/model"
)

// twoBlocks is a minimal instance with one precedence arc: two 2×2×2
// blocks where task 1 must start after task 0 finishes.
func twoBlocks(t *testing.T) (*model.Instance, *model.Order) {
	t.Helper()
	in := &model.Instance{
		Name:  "two-blocks",
		Tasks: []model.Task{{W: 2, H: 2, Dur: 2}, {W: 2, H: 2, Dur: 2}},
		Prec:  []model.Arc{{From: 0, To: 1}},
	}
	order, err := in.Order()
	if err != nil {
		t.Fatal(err)
	}
	return in, order
}

func testEnv(workers int) *Env {
	return &Env{
		SearchOpts: func(ctx context.Context) core.Options { return core.Options{Ctx: ctx} },
		Workers:    workers,
		Inc:        NewIncumbents(),
	}
}

func TestValidAndNames(t *testing.T) {
	for _, name := range []string{"", NameStaged, NamePortfolio, NameAnneal} {
		if !Valid(name) {
			t.Errorf("Valid(%q) = false, want true", name)
		}
	}
	for _, name := range []string{"greedy", "Staged", "portfolio ", "race", "Anneal"} {
		if Valid(name) {
			t.Errorf("Valid(%q) = true, want false", name)
		}
	}
	names := Names()
	if len(names) != 3 || names[0] != NameStaged || names[1] != NamePortfolio || names[2] != NameAnneal {
		t.Errorf("Names() = %v", names)
	}
}

func TestParse(t *testing.T) {
	env := testEnv(1)
	for name, want := range map[string]string{
		"":            NameStaged,
		NameStaged:    NameStaged,
		NamePortfolio: NamePortfolio,
		NameAnneal:    NameAnneal,
	} {
		s, err := Parse(name, env)
		if err != nil {
			t.Fatalf("Parse(%q): %v", name, err)
		}
		if s.Name() != want {
			t.Errorf("Parse(%q).Name() = %q, want %q", name, s.Name(), want)
		}
	}
	if _, err := Parse("bogus", env); err == nil {
		t.Error("Parse(bogus) succeeded, want error")
	}
}

func TestDecisionString(t *testing.T) {
	for d, want := range map[Decision]string{
		Unknown:     "unknown",
		Feasible:    "feasible",
		Infeasible:  "infeasible",
		Decision(7): "unknown",
	} {
		if got := d.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", int(d), got, want)
		}
	}
}

func TestIncumbentsMemo(t *testing.T) {
	in, order := twoBlocks(t)
	s := NewIncumbents()

	p1, mk1, ok1, hit1 := s.MinMakespan(in, 4, 4, order)
	if !ok1 || hit1 {
		t.Fatalf("first lookup: ok=%v hit=%v, want ok=true hit=false", ok1, hit1)
	}
	p2, mk2, ok2, hit2 := s.MinMakespan(in, 4, 4, order)
	if !ok2 || !hit2 {
		t.Fatalf("second lookup: ok=%v hit=%v, want ok=true hit=true", ok2, hit2)
	}
	if p1 != p2 || mk1 != mk2 {
		t.Errorf("memo returned a different entry: %p/%d vs %p/%d", p1, mk1, p2, mk2)
	}
	if mk1 != 4 { // serialized: 2+2 cycles
		t.Errorf("min makespan = %d, want 4", mk1)
	}
	// A different footprint is a fresh computation.
	if _, _, _, hit := s.MinMakespan(in, 5, 5, order); hit {
		t.Error("distinct footprint served from memo")
	}
	computes, hits := s.HeurStats()
	if computes != 2 || hits != 1 {
		t.Errorf("HeurStats() = (%d, %d), want (2, 1)", computes, hits)
	}
	// A chip too small for the tasks reports ok=false, memoized too.
	if _, _, ok, _ := s.MinMakespan(in, 1, 1, order); ok {
		t.Error("1×1 chip reported feasible heuristic placement")
	}
	if _, _, ok, hit := s.MinMakespan(in, 1, 1, order); ok || !hit {
		t.Errorf("negative entry not memoized: ok=%v hit=%v", ok, hit)
	}
}

func TestIncumbentsWitnessDominance(t *testing.T) {
	in, _ := twoBlocks(t)
	s := NewIncumbents()

	if _, _, ok := s.Dominating(model.Container{W: 10, H: 10, T: 10}); ok {
		t.Fatal("empty store produced a witness")
	}
	// Serialized placement: bounding box 2×2, makespan 4.
	serial := &model.Placement{X: []int{0, 0}, Y: []int{0, 0}, S: []int{0, 2}}
	s.RecordWitness(in, serial, "heuristic")
	if n := s.Witnesses(); n != 1 {
		t.Fatalf("Witnesses() = %d, want 1", n)
	}
	if _, src, ok := s.Dominating(model.Container{W: 2, H: 2, T: 4}); !ok || src != "heuristic" {
		t.Errorf("exact-fit lookup: ok=%v src=%q", ok, src)
	}
	if _, _, ok := s.Dominating(model.Container{W: 3, H: 3, T: 5}); !ok {
		t.Error("strictly larger container not answered")
	}
	if _, _, ok := s.Dominating(model.Container{W: 2, H: 2, T: 3}); ok {
		t.Error("tighter horizon answered by a slower witness")
	}
	if _, _, ok := s.Dominating(model.Container{W: 1, H: 2, T: 4}); ok {
		t.Error("narrower chip answered by a wider witness")
	}

	// A wider-but-faster placement is incomparable: both stay.
	wide := &model.Placement{X: []int{0, 2}, Y: []int{0, 0}, S: []int{0, 1}}
	s.RecordWitness(in, wide, "search")
	if n := s.Witnesses(); n != 2 {
		t.Fatalf("Witnesses() = %d after incomparable insert, want 2", n)
	}
	// A witness dominated by a stored one is not inserted...
	worse := &model.Placement{X: []int{0, 0}, Y: []int{0, 0}, S: []int{0, 3}}
	s.RecordWitness(in, worse, "search")
	if n := s.Witnesses(); n != 2 {
		t.Fatalf("Witnesses() = %d after dominated insert, want 2", n)
	}
	// ...and one dominating both evicts them.
	best := &model.Placement{X: []int{0, 0}, Y: []int{0, 0}, S: []int{0, 0}}
	// (not a valid schedule for the instance, but the store only indexes
	// bounding boxes; validity is the recorder's concern)
	s.RecordWitness(in, best, "search")
	if n := s.Witnesses(); n != 1 {
		t.Fatalf("Witnesses() = %d after dominating insert, want 1", n)
	}
	if p, _, ok := s.Dominating(model.Container{W: 2, H: 2, T: 2}); !ok || p != best {
		t.Errorf("dominating insert not served: ok=%v", ok)
	}
}

func TestIncumbentsConcurrent(t *testing.T) {
	in, order := twoBlocks(t)
	s := NewIncumbents()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				w := 2 + (g+i)%4
				s.MinMakespan(in, w, w, order)
				s.RecordWitness(in, &model.Placement{
					X: []int{0, 0}, Y: []int{0, 0}, S: []int{0, i % 5},
				}, "search")
				s.Dominating(model.Container{W: w, H: w, T: 4})
			}
		}(g)
	}
	wg.Wait()
	if n := s.Witnesses(); n < 1 {
		t.Errorf("Witnesses() = %d, want ≥ 1", n)
	}
}

func TestStagedAndPortfolioAgree(t *testing.T) {
	in, order := twoBlocks(t)
	cases := []struct {
		c    model.Container
		want Decision
	}{
		{model.Container{W: 2, H: 2, T: 4}, Feasible},
		{model.Container{W: 4, H: 4, T: 3}, Infeasible}, // critical path is 4
		{model.Container{W: 1, H: 1, T: 10}, Infeasible},
	}
	for _, tc := range cases {
		for _, workers := range []int{1, 2} {
			staged := NewStaged(testEnv(workers))
			port := NewPortfolio(testEnv(workers))
			p := &Problem{In: in, C: tc.c, Order: order}
			rs, err := staged.Solve(context.Background(), p)
			if err != nil {
				t.Fatal(err)
			}
			rp, err := port.Solve(context.Background(), p)
			if err != nil {
				t.Fatal(err)
			}
			if rs.Decision != tc.want || rp.Decision != tc.want {
				t.Errorf("container %+v workers=%d: staged=%v portfolio=%v, want %v",
					tc.c, workers, rs.Decision, rp.Decision, tc.want)
			}
			if rs.Decision == Feasible {
				if err := rs.Placement.Verify(in, tc.c, order); err != nil {
					t.Errorf("staged witness invalid: %v", err)
				}
				if err := rp.Placement.Verify(in, tc.c, order); err != nil {
					t.Errorf("portfolio witness invalid: %v", err)
				}
			}
		}
	}
}

func TestPortfolioIncumbentDominance(t *testing.T) {
	in, order := twoBlocks(t)
	env := testEnv(1)
	port := NewPortfolio(env)

	c := model.Container{W: 2, H: 2, T: 4}
	r1, err := port.Solve(context.Background(), &Problem{In: in, C: c, Order: order})
	if err != nil {
		t.Fatal(err)
	}
	if r1.Decision != Feasible || r1.DecidedBy != "heuristic" {
		t.Fatalf("first solve: %v by %q", r1.Decision, r1.DecidedBy)
	}
	// A looser container is dominated by the recorded witness.
	loose := model.Container{W: 3, H: 3, T: 6}
	r2, err := port.Solve(context.Background(), &Problem{In: in, C: loose, Order: order})
	if err != nil {
		t.Fatal(err)
	}
	if r2.Decision != Feasible || r2.DecidedBy != "incumbent" {
		t.Fatalf("dominated solve: %v by %q, want feasible by incumbent", r2.Decision, r2.DecidedBy)
	}
	if r2.Stats.Nodes != 0 {
		t.Errorf("incumbent answer spent %d search nodes", r2.Stats.Nodes)
	}
	if err := r2.Placement.Verify(in, loose, order); err != nil {
		t.Errorf("incumbent witness invalid: %v", err)
	}
	// Mutating the returned placement must not corrupt the store.
	r2.Placement.S[1] = 99
	r3, err := port.Solve(context.Background(), &Problem{In: in, C: loose, Order: order})
	if err != nil {
		t.Fatal(err)
	}
	if err := r3.Placement.Verify(in, loose, order); err != nil {
		t.Errorf("store witness was aliased by a caller: %v", err)
	}
}

func TestPortfolioRaceDecides(t *testing.T) {
	in, order := twoBlocks(t)
	// SkipBounds + SkipHeuristic leaves an inconclusive prover, so the
	// race resolves through the exact search on both outcomes.
	env := testEnv(2)
	env.SkipBounds = true
	env.SkipHeuristic = true
	port := NewPortfolio(env)
	feas, err := port.Solve(context.Background(), &Problem{In: in, C: model.Container{W: 2, H: 2, T: 4}, Order: order})
	if err != nil {
		t.Fatal(err)
	}
	if feas.Decision != Feasible || feas.DecidedBy != "search" {
		t.Fatalf("feasible race: %v by %q", feas.Decision, feas.DecidedBy)
	}
	inf, err := port.Solve(context.Background(), &Problem{In: in, C: model.Container{W: 4, H: 4, T: 3}, Order: order})
	if err != nil {
		t.Fatal(err)
	}
	// T=3 < critical path: either the search refutes it, or (with
	// bounds skipped here) only the search can — DecidedBy is search.
	if inf.Decision != Infeasible {
		t.Fatalf("infeasible race: %v by %q", inf.Decision, inf.DecidedBy)
	}

	// With the prover active, a bounds-refutable probe lets the prover
	// win without waiting for the search.
	env2 := testEnv(2)
	port2 := NewPortfolio(env2)
	r, err := port2.Solve(context.Background(), &Problem{In: in, C: model.Container{W: 4, H: 4, T: 2}, Order: order})
	if err != nil {
		t.Fatal(err)
	}
	if r.Decision != Infeasible {
		t.Fatalf("raced bound refutation: %v by %q", r.Decision, r.DecidedBy)
	}
}

func TestPortfolioRaceCanceled(t *testing.T) {
	in, order := twoBlocks(t)
	env := testEnv(2)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	r, err := NewPortfolio(env).Solve(ctx, &Problem{In: in, C: model.Container{W: 2, H: 2, T: 4}, Order: order})
	if err != nil {
		t.Fatal(err)
	}
	if r.Decision != Unknown || r.DecidedBy != "canceled" {
		t.Fatalf("pre-canceled solve: %v by %q", r.Decision, r.DecidedBy)
	}
}

func TestBuildProblemShapes(t *testing.T) {
	in, order := twoBlocks(t)
	c := model.Container{W: 4, H: 4, T: 6}
	free := BuildProblem(in, c, order, nil)
	if len(free.Dims) != 3 || !free.Dims[2].Ordered {
		t.Fatalf("free problem dims = %d (time ordered=%v)", len(free.Dims), free.Dims[2].Ordered)
	}
	if len(free.Seeds) == 0 {
		t.Error("precedence closure produced no seed arcs")
	}
	fixed := BuildProblem(in, c, order, []int{0, 2})
	if len(fixed.Fixed) == 0 && len(fixed.Seeds) == 0 {
		t.Error("fixed-starts problem carries no schedule structure")
	}
}
