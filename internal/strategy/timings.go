package strategy

import (
	"fmt"
	"time"
)

// StageTimings records the wall-clock time one OPP call (or, summed,
// a whole optimization run) spent in each stage of the three-stage
// framework of Section 3.1.
type StageTimings struct {
	Bounds    time.Duration `json:"bounds"`
	Heuristic time.Duration `json:"heuristic"`
	// Anneal is the randomized annealing placer's share (Anneal
	// strategy and anytime runs; zero elsewhere).
	Anneal time.Duration `json:"anneal,omitempty"`
	Search time.Duration `json:"search"`
}

// Add accumulates o into s.
func (s *StageTimings) Add(o StageTimings) {
	s.Bounds += o.Bounds
	s.Heuristic += o.Heuristic
	s.Anneal += o.Anneal
	s.Search += o.Search
}

// String renders the per-stage times, microsecond-rounded.
func (s StageTimings) String() string {
	if s.Anneal > 0 {
		return fmt.Sprintf("bounds %v · heuristic %v · anneal %v · search %v",
			s.Bounds.Round(time.Microsecond),
			s.Heuristic.Round(time.Microsecond),
			s.Anneal.Round(time.Microsecond),
			s.Search.Round(time.Microsecond))
	}
	return fmt.Sprintf("bounds %v · heuristic %v · search %v",
		s.Bounds.Round(time.Microsecond),
		s.Heuristic.Round(time.Microsecond),
		s.Search.Round(time.Microsecond))
}

// MS converts a duration to fractional milliseconds for trace fields.
func MS(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

// StagesMS renders stage timings as a trace/JSON field.
func StagesMS(s StageTimings) map[string]float64 {
	m := map[string]float64{
		"bounds":    MS(s.Bounds),
		"heuristic": MS(s.Heuristic),
		"search":    MS(s.Search),
	}
	if s.Anneal > 0 {
		m["anneal"] = MS(s.Anneal)
	}
	return m
}
