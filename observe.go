package fpga3d

// Observability: progress snapshots, JSONL event traces, and a metrics
// registry, wired into every solver entry point through Options.
//
//	var trace bytes.Buffer
//	o := &fpga3d.Options{
//		Progress: fpga3d.ProgressPrinter(os.Stderr, 0),
//		Trace:    fpga3d.NewTracer(&trace),
//		Metrics:  fpga3d.NewMetrics(),
//	}
//	r, err := fpga3d.MinimizeTime(in, 32, 32, o)
//
// All three hooks are optional and nil-safe; a solver run with none of
// them set pays only a nil check on the hot path.

import (
	"io"
	"time"

	"fpga3d/internal/core"
	"fpga3d/internal/obs"
	"fpga3d/internal/solver"
)

// Stats counts the work done by the branch-and-bound engine: nodes,
// leaves, and per-rule conflict/propagation/rejection tallies.
type Stats = core.Stats

// StageTimings is the wall-clock time spent in each stage of the
// three-stage framework (bounds, heuristic, exact search), summed over
// all engine calls of a run.
type StageTimings = solver.StageTimings

// ProgressSnapshot is a point-in-time view of a running search,
// delivered to a ProgressFunc roughly every 256 search nodes.
type ProgressSnapshot = obs.Snapshot

// ProgressFunc receives live progress snapshots. It is called from the
// solving goroutine; keep it fast and do not call back into the solver.
type ProgressFunc = obs.ProgressFunc

// Tracer writes one JSON object per solver event to a sink — a
// machine-readable record of an entire run (see the README for the
// event schema). Safe for concurrent use.
type Tracer = obs.Tracer

// Metrics is a registry of named counters and gauges updated by the
// solver. Safe for concurrent use; it implements http.Handler, serving
// a JSON snapshot of all values.
type Metrics = obs.Registry

// NewTracer returns a Tracer emitting JSON Lines to w.
func NewTracer(w io.Writer) *Tracer { return obs.NewTracer(w) }

// NewMetrics returns an empty metrics registry.
func NewMetrics() *Metrics { return obs.NewRegistry() }

// ProgressPrinter returns a ProgressFunc that renders a live one-line
// status display to w, refreshing at most once per interval
// (200ms if interval <= 0).
func ProgressPrinter(w io.Writer, interval time.Duration) ProgressFunc {
	return obs.NewPrinter(w, interval)
}
