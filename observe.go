package fpga3d

// Observability: progress snapshots, JSONL event traces, and a metrics
// registry, wired into every solver entry point through Options.
//
//	var trace bytes.Buffer
//	o := &fpga3d.Options{
//		Progress: fpga3d.ProgressPrinter(os.Stderr, 0),
//		Trace:    fpga3d.NewTracer(&trace),
//		Metrics:  fpga3d.NewMetrics(),
//	}
//	r, err := fpga3d.MinimizeTime(in, 32, 32, o)
//
// All three hooks are optional and nil-safe; a solver run with none of
// them set pays only a nil check on the hot path.

import (
	"context"
	"io"
	"time"

	"fpga3d/internal/core"
	"fpga3d/internal/obs"
	"fpga3d/internal/solver"
)

// Stats counts the work done by the branch-and-bound engine: nodes,
// leaves, and per-rule conflict/propagation/rejection tallies.
type Stats = core.Stats

// StageTimings is the wall-clock time spent in each stage of the
// three-stage framework (bounds, heuristic, exact search), summed over
// all engine calls of a run.
type StageTimings = solver.StageTimings

// ProgressSnapshot is a point-in-time view of a running search,
// delivered to a ProgressFunc roughly every 256 search nodes.
type ProgressSnapshot = obs.Snapshot

// ProgressFunc receives live progress snapshots. It is called from the
// solving goroutine; keep it fast and do not call back into the solver.
type ProgressFunc = obs.ProgressFunc

// Tracer writes one JSON object per solver event to a sink — a
// machine-readable record of an entire run (see the README for the
// event schema). Safe for concurrent use.
type Tracer = obs.Tracer

// Metrics is a registry of named counters, gauges and latency
// histograms updated by the solver. Safe for concurrent use; it
// implements http.Handler, serving a flat JSON snapshot by default and
// Prometheus text exposition when the request asks for it
// (?format=prom, or Accept: text/plain).
type Metrics = obs.Registry

// Histogram is a fixed-bucket latency histogram registered in a
// Metrics registry; observations are lock-free atomic increments.
type Histogram = obs.Histogram

// Span is one timed operation in a request-scoped span tree. Spans are
// emitted as "span" events through the run's Tracer when they end, and
// child spans carry their parent's ID plus the shared request ID, so a
// trace file reconstructs the whole tree. All methods are nil-safe.
type Span = obs.Span

// PrometheusContentType is the Content-Type of the Prometheus text
// exposition served by a Metrics registry on content negotiation.
const PrometheusContentType = obs.PrometheusContentType

// Metric names published by the fpgad placement daemon (cmd/fpgad)
// into its /metrics registry, alongside the solver's own opp.* and
// search.* series. Counters are cumulative since process start;
// gauges are instantaneous. MetricRequests is a prefix: each endpoint
// appends its name (server.requests.solve, server.requests.minimize_time,
// server.requests.minimize_chip).
const (
	// MetricRequests counts accepted API requests, per endpoint suffix.
	MetricRequests = obs.MetricRequests
	// MetricRejectedQueueFull counts 429 admission rejections.
	MetricRejectedQueueFull = obs.MetricRejectedQueueFull
	// MetricDeadlineExpired counts solves answered 504 after their
	// request deadline expired.
	MetricDeadlineExpired = obs.MetricDeadlineExpired
	// MetricSolveErrors counts decode and solver failures.
	MetricSolveErrors = obs.MetricSolveErrors
	// MetricInflight gauges currently running solves.
	MetricInflight = obs.MetricInflight
	// MetricQueueDepth gauges admitted requests waiting for a slot.
	MetricQueueDepth = obs.MetricQueueDepth
	// MetricCacheHits counts canonical-instance cache hits.
	MetricCacheHits = obs.MetricCacheHits
	// MetricCacheMisses counts cache lookups that ran the solver.
	MetricCacheMisses = obs.MetricCacheMisses
	// MetricCacheEvictions counts LRU evictions from the result cache.
	MetricCacheEvictions = obs.MetricCacheEvictions
	// MetricCacheSize gauges resident result-cache entries.
	MetricCacheSize = obs.MetricCacheSize
	// MetricRequestLatency prefixes the per-endpoint request-latency
	// histograms (server.latency.solve, …; seconds).
	MetricRequestLatency = obs.MetricRequestLatency
	// MetricQueueWait histograms time spent waiting for a solve slot.
	MetricQueueWait = obs.MetricQueueWait
	// MetricCacheLookup histograms result-cache lookup latency.
	MetricCacheLookup = obs.MetricCacheLookup
	// MetricStageLatency prefixes the per-stage solve-duration
	// histograms (server.stage.bounds, server.stage.heuristic,
	// server.stage.search).
	MetricStageLatency = obs.MetricStageLatency
	// MetricProgressSubscribers gauges connected SSE progress
	// subscribers on GET /v1/progress/{id}.
	MetricProgressSubscribers = obs.MetricProgressSubscribers
	// MetricSessionsActive gauges resident online placement sessions.
	MetricSessionsActive = obs.MetricSessionsActive
	// MetricSessionsCreated counts sessions created over the process
	// lifetime.
	MetricSessionsCreated = obs.MetricSessionsCreated
	// MetricSessionsExpired counts sessions evicted by TTL idleness.
	MetricSessionsExpired = obs.MetricSessionsExpired
	// MetricSessionsDeleted counts sessions removed by client DELETE.
	MetricSessionsDeleted = obs.MetricSessionsDeleted
	// MetricSessionAdmits prefixes the per-outcome session admission
	// counters (server.session.admit.placed, ….defrag, ….rejected,
	// ….unknown).
	MetricSessionAdmits = obs.MetricSessionAdmits
	// MetricSessionDefragMoves counts modules relocated by session
	// defragmentation plans.
	MetricSessionDefragMoves = obs.MetricSessionDefragMoves
	// MetricJobsSubmitted counts async jobs accepted by POST /v1/jobs.
	MetricJobsSubmitted = obs.MetricJobsSubmitted
	// MetricJobsRejected prefixes the 429 job-submission rejection
	// counters (.table_full, .client_cap).
	MetricJobsRejected = obs.MetricJobsRejected
	// MetricJobsState prefixes the per-state job-table gauges
	// (.queued, .running, .done, .failed, .canceled).
	MetricJobsState = obs.MetricJobsState
	// MetricJobLatency histograms job submission-to-terminal latency.
	MetricJobLatency = obs.MetricJobLatency
	// MetricBatchEntries counts instances received in batch bodies.
	MetricBatchEntries = obs.MetricBatchEntries
	// MetricBatchDeduped counts batch entries deduped by canonical key.
	MetricBatchDeduped = obs.MetricBatchDeduped
	// MetricSessionAdmitLatency histograms session admission latency in
	// seconds.
	MetricSessionAdmitLatency = obs.MetricSessionAdmitLatency
)

// NewTracer returns a Tracer emitting JSON Lines to w.
func NewTracer(w io.Writer) *Tracer { return obs.NewTracer(w) }

// NewMetrics returns an empty metrics registry.
func NewMetrics() *Metrics { return obs.NewRegistry() }

// ProgressPrinter returns a ProgressFunc that renders a live one-line
// status display to w, refreshing at most once per interval
// (200ms if interval <= 0).
func ProgressPrinter(w io.Writer, interval time.Duration) ProgressFunc {
	return obs.NewPrinter(w, interval)
}

// NewRequestID returns a fresh 16-hex-digit identifier for correlating
// one request's spans, trace events and log lines.
func NewRequestID() string { return obs.NewRequestID() }

// ContextWithRequestID stamps ctx with a request ID; spans started
// under the returned context inherit it.
func ContextWithRequestID(ctx context.Context, id string) context.Context {
	return obs.ContextWithRequestID(ctx, id)
}

// RequestIDFromContext returns the request ID carried by ctx ("" if
// none).
func RequestIDFromContext(ctx context.Context) string {
	return obs.RequestIDFromContext(ctx)
}

// StartSpan opens a span named name under ctx, emitting to tr (or, for
// a child span, to its parent's tracer when tr is nil). It returns ctx
// unchanged plus a nil span — free — when no tracer is reachable.
func StartSpan(ctx context.Context, tr *Tracer, name string) (context.Context, *Span) {
	return obs.StartSpan(ctx, tr, name)
}
