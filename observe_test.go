package fpga3d_test

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"fpga3d"
)

// TestObservabilityAPI wires all three hooks through the public API and
// checks that a MinimizeTime run feeds each of them.
func TestObservabilityAPI(t *testing.T) {
	in := fpga3d.NewInstance("obs-api")
	a := in.AddTask("a", 2, 2, 2)
	b := in.AddTask("b", 2, 1, 1)
	in.AddTask("c", 1, 2, 2)
	in.AddPrecedence(a, b)

	var trace, progress bytes.Buffer
	o := &fpga3d.Options{
		Progress: fpga3d.ProgressPrinter(&progress, 0),
		Trace:    fpga3d.NewTracer(&trace),
		Metrics:  fpga3d.NewMetrics(),
	}
	r, err := fpga3d.MinimizeTime(in, 3, 3, o)
	if err != nil {
		t.Fatal(err)
	}
	if r.Decision != fpga3d.Feasible {
		t.Fatalf("decision %v", r.Decision)
	}
	if r.Stats.Nodes != r.Nodes {
		t.Errorf("Stats.Nodes %d != Nodes %d", r.Stats.Nodes, r.Nodes)
	}

	// Every trace line is a JSON object; the solver's event stream is
	// bracketed by solve_start/solve_end, and the run's span tree ends
	// after (spans close when the driver returns).
	lines := strings.Split(strings.TrimSuffix(trace.String(), "\n"), "\n")
	if len(lines) < 2 {
		t.Fatalf("trace has %d lines", len(lines))
	}
	var events, spans []map[string]any
	for _, line := range lines {
		var ev map[string]any
		if err := json.Unmarshal([]byte(line), &ev); err != nil {
			t.Fatal(err)
		}
		if ev["ev"] == "span" {
			spans = append(spans, ev)
		} else {
			events = append(events, ev)
		}
	}
	first, last := events[0], events[len(events)-1]
	if first["ev"] != "solve_start" || last["ev"] != "solve_end" {
		t.Errorf("trace brackets %v … %v", first["ev"], last["ev"])
	}
	if last["value"] != float64(r.Value) {
		t.Errorf("solve_end value %v, result %d", last["value"], r.Value)
	}
	if len(spans) == 0 {
		t.Error("trace carries no span events")
	}

	if progress.Len() == 0 {
		t.Error("progress printer wrote nothing")
	}
	if snap := o.Metrics.Snapshot(); len(snap) == 0 {
		t.Error("metrics registry is empty after a run")
	}
}

// TestResultStages: per-stage timings surface on the public results.
func TestResultStages(t *testing.T) {
	in := fpga3d.NewInstance("stages")
	in.AddTask("a", 2, 2, 1)
	in.AddTask("b", 2, 2, 1)
	r, err := fpga3d.Solve(in, fpga3d.Chip{W: 2, H: 2, T: 2}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if r.Decision != fpga3d.Feasible {
		t.Fatalf("decision %v", r.Decision)
	}
	total := r.Stages.Bounds + r.Stages.Heuristic + r.Stages.Search
	if total <= 0 {
		t.Errorf("no stage time on Result: %+v", r.Stages)
	}
}
