package pack_test

import (
	"fmt"
	"log"

	"fpga3d/pack"
)

// ExampleDecide solves a 2D rectangle packing question: do four 2×2
// squares fill a 4×4 square exactly?
func ExampleDecide() {
	p := &pack.Problem{
		Container:  []int{4, 4},
		Boxes:      []pack.Box{{2, 2}, {2, 2}, {2, 2}, {2, 2}},
		OrderedDim: -1,
	}
	r, err := pack.Decide(p, pack.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(r.Feasible)
	// Output: true
}

// ExampleMinimize solves a strip packing problem: the minimal height of
// a width-4 strip holding a 4×1 plank and two 2×2 squares.
func ExampleMinimize() {
	p := &pack.Problem{
		Container:  []int{4, 100},
		Boxes:      []pack.Box{{4, 1}, {2, 2}, {2, 2}},
		OrderedDim: -1,
	}
	h, _, err := pack.Minimize(p, 1, pack.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(h)
	// Output: 3
}

// ExampleDecide_withOrder schedules three unit-width jobs of length 2
// on two machines (a 2×T strip) with a chain constraint.
func ExampleDecide_withOrder() {
	p := &pack.Problem{
		Container:  []int{2, 4},
		Boxes:      []pack.Box{{1, 2}, {1, 2}, {1, 2}},
		OrderedDim: 1,
		Arcs:       [][2]int{{0, 1}}, // job 0 before job 1
	}
	r, err := pack.Decide(p, pack.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(r.Feasible)
	// Output: true
}
