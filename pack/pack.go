// Package pack exposes the packing-class engine as a general exact
// solver for d-dimensional orthogonal packing problems with optional
// order constraints on one dimension.
//
// The FPGA placement solver of the parent module is the 3-dimensional
// instantiation of this machinery (x, y, time); the engine itself is
// dimension-generic, as is the Fekete–Schepers theory it implements.
// This package makes it usable for related problems: 2-dimensional
// rectangle packing, strip packing, or higher-dimensional scheduling
// models.
package pack

import (
	"fmt"
	"time"

	"fpga3d/internal/core"
	"fpga3d/internal/graph"
)

// Box is one item: its extent in every dimension.
type Box []int

// Problem is a d-dimensional orthogonal packing decision problem:
// do the boxes fit into the container without overlap?
//
// Arcs optionally impose a partial order on OrderedDim: for an arc
// (u, v), box u's interval on that dimension must end before box v's
// begins. Set OrderedDim to -1 (or leave Arcs empty) for a plain
// packing problem.
type Problem struct {
	// Container holds the capacity of each dimension; its length is the
	// dimension count d ≥ 2.
	Container []int
	// Boxes holds the items; every box must have d extents.
	Boxes []Box
	// OrderedDim designates the dimension carrying the order
	// constraints, or -1 for none.
	OrderedDim int
	// Arcs are the order constraints (indices into Boxes).
	Arcs [][2]int
}

// Validate checks the problem for structural errors.
func (p *Problem) Validate() error {
	d := len(p.Container)
	if d < 2 {
		return fmt.Errorf("pack: %d dimensions; need at least 2", d)
	}
	if len(p.Boxes) == 0 {
		return fmt.Errorf("pack: no boxes")
	}
	for i, c := range p.Container {
		if c <= 0 {
			return fmt.Errorf("pack: container dimension %d is %d", i, c)
		}
	}
	for b, box := range p.Boxes {
		if len(box) != d {
			return fmt.Errorf("pack: box %d has %d extents for %d dimensions", b, len(box), d)
		}
		for i, w := range box {
			if w <= 0 {
				return fmt.Errorf("pack: box %d has extent %d in dimension %d", b, w, i)
			}
		}
	}
	if len(p.Arcs) > 0 && (p.OrderedDim < 0 || p.OrderedDim >= d) {
		return fmt.Errorf("pack: arcs given but OrderedDim = %d", p.OrderedDim)
	}
	for _, a := range p.Arcs {
		if a[0] < 0 || a[0] >= len(p.Boxes) || a[1] < 0 || a[1] >= len(p.Boxes) || a[0] == a[1] {
			return fmt.Errorf("pack: arc %v out of range", a)
		}
	}
	if !p.arcDigraph().IsAcyclic() {
		return fmt.Errorf("pack: order constraints contain a cycle")
	}
	return nil
}

func (p *Problem) arcDigraph() *graph.Digraph {
	d := graph.NewDigraph(len(p.Boxes))
	for _, a := range p.Arcs {
		d.AddArc(a[0], a[1])
	}
	return d
}

// Options bounds the search effort; the zero value means no limits.
type Options struct {
	NodeLimit int64
	TimeLimit time.Duration
}

// Result reports the outcome of a Decide call.
type Result struct {
	// Feasible is valid only when Decided is true.
	Feasible bool
	// Decided is false when a node or time limit was hit first.
	Decided bool
	// Positions[b][i] is box b's coordinate in dimension i
	// (present only for feasible results).
	Positions [][]int
	// Nodes is the number of branch-and-bound nodes expended.
	Nodes int64
}

// Decide solves the packing decision problem exactly.
func Decide(p *Problem, opt Options) (*Result, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	// A box exceeding the container in any dimension is an immediate no.
	for _, box := range p.Boxes {
		for i, w := range box {
			if w > p.Container[i] {
				return &Result{Decided: true, Feasible: false}, nil
			}
		}
	}
	cp := &core.Problem{N: len(p.Boxes)}
	for i, c := range p.Container {
		dim := core.Dim{Cap: c, Sizes: make([]int, len(p.Boxes)), Ordered: i == p.OrderedDim}
		for b, box := range p.Boxes {
			dim.Sizes[b] = box[i]
		}
		cp.Dims = append(cp.Dims, dim)
	}
	if len(p.Arcs) > 0 {
		// Seed with the transitive closure, as the paper recommends, so
		// contradictions surface as early as possible.
		cl := p.arcDigraph().TransitiveClosure()
		for u := 0; u < cl.N(); u++ {
			uu := u
			cl.Out(uu).ForEach(func(v int) {
				cp.Seeds = append(cp.Seeds, core.SeedArc{Dim: p.OrderedDim, From: uu, To: v})
			})
		}
	}
	copt := core.Options{NodeLimit: opt.NodeLimit, TimeOverlapFirst: true}
	if opt.TimeLimit > 0 {
		copt.Deadline = time.Now().Add(opt.TimeLimit)
	}
	r := core.Solve(cp, copt)
	res := &Result{Nodes: r.Stats.Nodes}
	switch r.Status {
	case core.StatusFeasible:
		res.Decided, res.Feasible = true, true
		res.Positions = make([][]int, len(p.Boxes))
		for b := range p.Boxes {
			pos := make([]int, len(p.Container))
			for i := range p.Container {
				pos[i] = r.Solution.Coords[i][b]
			}
			res.Positions[b] = pos
		}
		if err := verify(p, res.Positions); err != nil {
			return nil, fmt.Errorf("pack: internal error: %w", err)
		}
	case core.StatusInfeasible:
		res.Decided = true
	}
	return res, nil
}

// Minimize finds the smallest capacity of dimension dim for which the
// problem becomes feasible, holding the other capacities fixed.
// With dim == OrderedDim this is the strip packing / makespan problem.
// It returns the minimal capacity, a witness, and whether the question
// was decided within the limits.
func Minimize(p *Problem, dim int, opt Options) (int, *Result, error) {
	if err := p.Validate(); err != nil {
		return 0, nil, err
	}
	if dim < 0 || dim >= len(p.Container) {
		return 0, nil, fmt.Errorf("pack: dimension %d out of range", dim)
	}
	// Misfits in the fixed dimensions can never be repaired.
	for b, box := range p.Boxes {
		for i, w := range box {
			if i != dim && w > p.Container[i] {
				return 0, nil, fmt.Errorf("pack: box %d does not fit the fixed dimensions", b)
			}
		}
	}
	// Upper bound: stacking every box along dim always fits.
	ub := 0
	lb := 1
	for _, box := range p.Boxes {
		ub += box[dim]
		if box[dim] > lb {
			lb = box[dim]
		}
	}
	work := *p
	work.Container = append([]int(nil), p.Container...)

	probe := func(c int) (*Result, error) {
		work.Container[dim] = c
		return Decide(&work, opt)
	}
	// Establish feasibility at ub (guaranteed unless arcs make even the
	// stack infeasible — impossible, a topological stack satisfies any
	// acyclic order).
	best, err := probe(ub)
	if err != nil {
		return 0, nil, err
	}
	if !best.Decided || !best.Feasible {
		return 0, best, nil // limits hit even on the trivial horizon
	}
	bestC := ub
	lo, hi := lb, ub
	for lo < hi {
		mid := (lo + hi) / 2
		r, err := probe(mid)
		if err != nil {
			return 0, nil, err
		}
		if !r.Decided {
			return bestC, best, nil // report the best proven point
		}
		if r.Feasible {
			hi, best, bestC = mid, r, mid
		} else {
			lo = mid + 1
		}
	}
	return bestC, best, nil
}

// MinimizeBins solves the d-dimensional bin packing problem built on
// the same engine: the minimal number of identical containers (bins)
// holding all boxes. The bin index is modeled as an extra dimension of
// unit extent per box — two boxes in the same bin must separate in a
// real dimension. Order constraints (if any) apply within the
// configured OrderedDim and hold across bins.
func MinimizeBins(p *Problem, opt Options) (int, *Result, []int, error) {
	if err := p.Validate(); err != nil {
		return 0, nil, nil, err
	}
	for b, box := range p.Boxes {
		for i, w := range box {
			if w > p.Container[i] {
				return 0, nil, nil, fmt.Errorf("pack: box %d does not fit a single bin", b)
			}
		}
	}
	d := len(p.Container)
	// Volume lower bound.
	binVol := 1
	for _, c := range p.Container {
		binVol *= c
	}
	total := 0
	for _, box := range p.Boxes {
		v := 1
		for _, w := range box {
			v *= w
		}
		total += v
	}
	kLo := (total + binVol - 1) / binVol
	if kLo < 1 {
		kLo = 1
	}
	for k := kLo; k <= len(p.Boxes); k++ {
		ext := &Problem{
			Container:  append(append([]int(nil), p.Container...), k),
			OrderedDim: p.OrderedDim,
			Arcs:       p.Arcs,
		}
		for _, box := range p.Boxes {
			ext.Boxes = append(ext.Boxes, append(append(Box(nil), box...), 1))
		}
		r, err := Decide(ext, opt)
		if err != nil {
			return 0, nil, nil, err
		}
		if !r.Decided {
			return 0, r, nil, nil
		}
		if r.Feasible {
			bins := make([]int, len(p.Boxes))
			for b := range p.Boxes {
				bins[b] = r.Positions[b][d]
				r.Positions[b] = r.Positions[b][:d]
			}
			return k, r, bins, nil
		}
	}
	return 0, nil, nil, fmt.Errorf("pack: infeasible even with one bin per box (internal error)")
}

// verify checks the returned positions geometrically.
func verify(p *Problem, pos [][]int) error {
	d := len(p.Container)
	for b, box := range p.Boxes {
		for i := 0; i < d; i++ {
			if pos[b][i] < 0 || pos[b][i]+box[i] > p.Container[i] {
				return fmt.Errorf("box %d out of bounds in dimension %d", b, i)
			}
		}
	}
	for a := 0; a < len(p.Boxes); a++ {
		for b := a + 1; b < len(p.Boxes); b++ {
			all := true
			for i := 0; i < d; i++ {
				if pos[a][i]+p.Boxes[a][i] <= pos[b][i] || pos[b][i]+p.Boxes[b][i] <= pos[a][i] {
					all = false
					break
				}
			}
			if all {
				return fmt.Errorf("boxes %d and %d overlap", a, b)
			}
		}
	}
	for _, arc := range p.Arcs {
		u, v := arc[0], arc[1]
		if pos[u][p.OrderedDim]+p.Boxes[u][p.OrderedDim] > pos[v][p.OrderedDim] {
			return fmt.Errorf("arc %v violated", arc)
		}
	}
	return nil
}
