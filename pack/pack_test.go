package pack

import (
	"math/rand"
	"testing"
	"time"
)

func decide(t *testing.T, p *Problem) bool {
	t.Helper()
	r, err := Decide(p, Options{TimeLimit: 30 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if !r.Decided {
		t.Fatal("undecided")
	}
	return r.Feasible
}

func TestValidate(t *testing.T) {
	good := &Problem{Container: []int{4, 4}, Boxes: []Box{{2, 2}}, OrderedDim: -1}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []*Problem{
		{Container: []int{4}, Boxes: []Box{{2}}, OrderedDim: -1},
		{Container: []int{4, 4}, OrderedDim: -1},
		{Container: []int{4, 0}, Boxes: []Box{{2, 2}}, OrderedDim: -1},
		{Container: []int{4, 4}, Boxes: []Box{{2}}, OrderedDim: -1},
		{Container: []int{4, 4}, Boxes: []Box{{2, 0}}, OrderedDim: -1},
		{Container: []int{4, 4}, Boxes: []Box{{2, 2}, {1, 1}}, OrderedDim: -1, Arcs: [][2]int{{0, 1}}},
		{Container: []int{4, 4}, Boxes: []Box{{2, 2}, {1, 1}}, OrderedDim: 0, Arcs: [][2]int{{0, 2}}},
		{Container: []int{4, 4}, Boxes: []Box{{2, 2}, {1, 1}}, OrderedDim: 0, Arcs: [][2]int{{0, 1}, {1, 0}}},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("bad problem %d accepted", i)
		}
	}
}

func Test2DSquares(t *testing.T) {
	// Four unit squares tile a 2×2 square.
	p := &Problem{Container: []int{2, 2}, OrderedDim: -1,
		Boxes: []Box{{1, 1}, {1, 1}, {1, 1}, {1, 1}}}
	if !decide(t, p) {
		t.Fatal("4 unit squares in 2x2 rejected")
	}
	// Five do not.
	p.Boxes = append(p.Boxes, Box{1, 1})
	if decide(t, p) {
		t.Fatal("5 unit squares in 2x2 accepted")
	}
}

func Test2DClassicRectangles(t *testing.T) {
	// 2×3 and 3×2 fit in 5×3 side by side; not in 4×3.
	p := &Problem{Container: []int{5, 3}, OrderedDim: -1,
		Boxes: []Box{{2, 3}, {3, 2}}}
	if !decide(t, p) {
		t.Fatal("5x3 case rejected")
	}
	p.Container = []int{4, 3}
	if decide(t, p) {
		t.Fatal("4x3 case accepted")
	}
	// A perfect 2D tiling: 4x4 from one 2x4, two 2x2, one 4x2… area 8+4+4+8 = 24 ≠ 16.
	// Instead: 4×4 from four 2×2.
	p = &Problem{Container: []int{4, 4}, OrderedDim: -1,
		Boxes: []Box{{2, 2}, {2, 2}, {2, 2}, {2, 2}}}
	if !decide(t, p) {
		t.Fatal("perfect 2x2 tiling rejected")
	}
}

// TestRamsey2D: six 2×2 squares in a 5×5 container — pairwise each pair
// must separate in x or y; R(3,3)=6 forces a 3-chain (6 > 5): infeasible
// although the area (24 ≤ 25) allows it.
func TestRamsey2D(t *testing.T) {
	p := &Problem{Container: []int{5, 5}, OrderedDim: -1}
	for i := 0; i < 6; i++ {
		p.Boxes = append(p.Boxes, Box{2, 2})
	}
	if decide(t, p) {
		t.Fatal("six 2x2 in 5x5 accepted")
	}
	p.Container = []int{6, 5}
	if !decide(t, p) {
		t.Fatal("six 2x2 in 6x5 rejected")
	}
}

func Test4D(t *testing.T) {
	// Two hypercubes of side 2 in a 2×2×2×4 container: stack along the
	// last axis.
	p := &Problem{Container: []int{2, 2, 2, 4}, OrderedDim: -1,
		Boxes: []Box{{2, 2, 2, 2}, {2, 2, 2, 2}}}
	if !decide(t, p) {
		t.Fatal("4D stacking rejected")
	}
	p.Container = []int{2, 2, 2, 3}
	if decide(t, p) {
		t.Fatal("overfull 4D container accepted")
	}
}

func TestOrderConstraints(t *testing.T) {
	// Two boxes in a 1×1 spatial slot with a chain on dimension 1.
	p := &Problem{
		Container:  []int{1, 4},
		Boxes:      []Box{{1, 2}, {1, 2}},
		OrderedDim: 1,
		Arcs:       [][2]int{{0, 1}},
	}
	r, err := Decide(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !r.Feasible {
		t.Fatal("chain rejected")
	}
	if r.Positions[0][1]+2 > r.Positions[1][1] {
		t.Fatalf("order violated: %v", r.Positions)
	}
	// The reverse order is also representable; both at once are not.
	p.Arcs = [][2]int{{0, 1}, {1, 0}}
	if err := p.Validate(); err == nil {
		t.Fatal("cyclic arcs accepted")
	}
}

func TestOrderMakesInfeasible(t *testing.T) {
	// Without order: two 1×2 boxes fit side by side in 2×2.
	p := &Problem{Container: []int{2, 2}, OrderedDim: -1,
		Boxes: []Box{{1, 2}, {1, 2}}}
	if !decide(t, p) {
		t.Fatal("side-by-side rejected")
	}
	// An order constraint on dimension 1 forces them sequential: the
	// container is too short.
	p.OrderedDim = 1
	p.Arcs = [][2]int{{0, 1}}
	if decide(t, p) {
		t.Fatal("order-violating packing accepted")
	}
}

func TestMisfitBox(t *testing.T) {
	p := &Problem{Container: []int{3, 3}, OrderedDim: -1, Boxes: []Box{{4, 1}}}
	r, err := Decide(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !r.Decided || r.Feasible {
		t.Fatal("misfit box accepted")
	}
}

func TestMinimizeStrip(t *testing.T) {
	// Classic strip packing: minimize the height of a width-4 strip for
	// rectangles (widths × heights): 4×1, 2×2, 2×2 → optimal height 3.
	p := &Problem{
		Container:  []int{4, 999},
		Boxes:      []Box{{4, 1}, {2, 2}, {2, 2}},
		OrderedDim: -1,
	}
	h, r, err := Minimize(p, 1, Options{TimeLimit: 30 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if h != 3 {
		t.Fatalf("strip height = %d, want 3", h)
	}
	if r == nil || !r.Feasible {
		t.Fatal("no witness")
	}
}

func TestMinimizeWithOrder(t *testing.T) {
	// Makespan of a chain of three unit-area jobs of length 2 = 6.
	p := &Problem{
		Container:  []int{2, 999},
		Boxes:      []Box{{1, 2}, {1, 2}, {1, 2}},
		OrderedDim: 1,
		Arcs:       [][2]int{{0, 1}, {1, 2}},
	}
	m, _, err := Minimize(p, 1, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if m != 6 {
		t.Fatalf("makespan = %d, want 6", m)
	}
	// Without the chain they pack two abreast: ⌈3/2⌉·2 = 4.
	p.Arcs = nil
	p.OrderedDim = -1
	m, _, err = Minimize(p, 1, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if m != 4 {
		t.Fatalf("unordered makespan = %d, want 4", m)
	}
}

func TestMinimizeErrors(t *testing.T) {
	p := &Problem{Container: []int{2, 2}, OrderedDim: -1, Boxes: []Box{{3, 1}}}
	if _, _, err := Minimize(p, 1, Options{}); err == nil {
		t.Fatal("fixed-dimension misfit accepted")
	}
	p = &Problem{Container: []int{2, 2}, OrderedDim: -1, Boxes: []Box{{1, 1}}}
	if _, _, err := Minimize(p, 5, Options{}); err == nil {
		t.Fatal("out-of-range dimension accepted")
	}
}

// brute2D exhaustively enumerates 2D positions.
func brute2D(p *Problem) bool {
	n := len(p.Boxes)
	pos := make([][2]int, n)
	var rec func(i int) bool
	rec = func(i int) bool {
		if i == n {
			return true
		}
		for x := 0; x+p.Boxes[i][0] <= p.Container[0]; x++ {
		next:
			for y := 0; y+p.Boxes[i][1] <= p.Container[1]; y++ {
				for j := 0; j < i; j++ {
					if pos[j][0] < x+p.Boxes[i][0] && x < pos[j][0]+p.Boxes[j][0] &&
						pos[j][1] < y+p.Boxes[i][1] && y < pos[j][1]+p.Boxes[j][1] {
						continue next
					}
				}
				pos[i] = [2]int{x, y}
				if rec(i + 1) {
					return true
				}
			}
		}
		return false
	}
	return rec(0)
}

func TestDecide2DQuickAgainstBruteForce(t *testing.T) {
	for seed := int64(0); seed < 600; seed++ {
		rng := rand.New(rand.NewSource(seed))
		p := &Problem{
			Container:  []int{2 + rng.Intn(3), 2 + rng.Intn(3)},
			OrderedDim: -1,
		}
		n := 2 + rng.Intn(4)
		for i := 0; i < n; i++ {
			p.Boxes = append(p.Boxes, Box{1 + rng.Intn(p.Container[0]), 1 + rng.Intn(p.Container[1])})
		}
		want := brute2D(p)
		if got := decide(t, p); got != want {
			t.Fatalf("seed %d: pack=%v brute=%v for %+v", seed, got, want, p)
		}
	}
}

func TestMinimizeBins2D(t *testing.T) {
	// Five 2×2 squares into 4×4 bins: each bin holds four, so two bins
	// suffice and one is impossible (a 4×4 bin holds at most four).
	p := &Problem{Container: []int{4, 4}, OrderedDim: -1}
	for i := 0; i < 5; i++ {
		p.Boxes = append(p.Boxes, Box{2, 2})
	}
	k, r, bins, err := MinimizeBins(p, Options{TimeLimit: 30 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if k != 2 {
		t.Fatalf("bins = %d, want 2", k)
	}
	if r == nil || !r.Feasible || len(bins) != 5 {
		t.Fatal("no witness")
	}
	for _, b := range bins {
		if b < 0 || b >= 2 {
			t.Fatalf("bin assignment %v", bins)
		}
	}
	// Witness positions are d-dimensional again (bin axis stripped).
	if len(r.Positions[0]) != 2 {
		t.Fatalf("positions carry %d dims", len(r.Positions[0]))
	}
}

func TestMinimizeBinsSingle(t *testing.T) {
	p := &Problem{Container: []int{4, 4}, OrderedDim: -1,
		Boxes: []Box{{2, 2}, {2, 2}}}
	k, _, _, err := MinimizeBins(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if k != 1 {
		t.Fatalf("bins = %d, want 1", k)
	}
}

func TestMinimizeBinsMisfit(t *testing.T) {
	p := &Problem{Container: []int{2, 2}, OrderedDim: -1, Boxes: []Box{{3, 1}}}
	if _, _, _, err := MinimizeBins(p, Options{}); err == nil {
		t.Fatal("misfit accepted")
	}
}

func TestMinimizeBinsWithOrder(t *testing.T) {
	// Two full-bin jobs with a chain: the order lives on dimension 1,
	// both fit one bin sequentially (container tall enough).
	p := &Problem{
		Container:  []int{2, 4},
		Boxes:      []Box{{2, 2}, {2, 2}},
		OrderedDim: 1,
		Arcs:       [][2]int{{0, 1}},
	}
	k, r, _, err := MinimizeBins(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if k != 1 {
		t.Fatalf("bins = %d, want 1", k)
	}
	if r.Positions[0][1]+2 > r.Positions[1][1] {
		t.Fatalf("order violated: %v", r.Positions)
	}
}
