package fpga3d

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"testing"
	"time"
)

// loadBench reads one of the benchmark instances shipped in instances/.
func loadBench(t *testing.T, path string) *Instance {
	t.Helper()
	in, err := LoadInstance(path)
	if err != nil {
		t.Fatal(err)
	}
	return in
}

func samePlacement(a, b *Placement) bool {
	if (a == nil) != (b == nil) {
		return false
	}
	if a == nil {
		return true
	}
	eq := func(x, y []int) bool {
		if len(x) != len(y) {
			return false
		}
		for i := range x {
			if x[i] != y[i] {
				return false
			}
		}
		return true
	}
	return eq(a.X, b.X) && eq(a.Y, b.Y) && eq(a.S, b.S)
}

// TestMinimizeChipParallelStress races Workers=8 against the sequential
// sweep on both shipped benchmark instances and requires bit-identical
// optima and witness placements. Run with -race to exercise the
// concurrent probe machinery.
func TestMinimizeChipParallelStress(t *testing.T) {
	cases := []struct {
		name string
		path string
		T    int
		opt  func(workers int) *Options
	}{
		// Search-only so the raced probes expend real engine nodes.
		{"de-search-only", "instances/de.json", 6, func(w int) *Options {
			return &Options{Workers: w, SkipBounds: true, SkipHeuristic: true}
		}},
		{"de-full-stack", "instances/de.json", 13, func(w int) *Options {
			return &Options{Workers: w}
		}},
		// The video codec is only tractable with bounds + heuristic on.
		{"videocodec", "instances/videocodec.json", 59, func(w int) *Options {
			return &Options{Workers: w}
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			in := loadBench(t, tc.path)
			seq, err := MinimizeChip(in, tc.T, tc.opt(1))
			if err != nil {
				t.Fatal(err)
			}
			par, err := MinimizeChip(in, tc.T, tc.opt(8))
			if err != nil {
				t.Fatal(err)
			}
			if seq.Decision != par.Decision || seq.Value != par.Value {
				t.Fatalf("sequential (%v, h=%d) vs parallel (%v, h=%d)",
					seq.Decision, seq.Value, par.Decision, par.Value)
			}
			if !samePlacement(seq.Placement, par.Placement) {
				t.Fatalf("witness placements differ at h=%d", par.Value)
			}
		})
	}
}

// TestParallelMergedNodesMatchTraceShards checks the accounting
// invariant of the worker pool: the merged node count of a parallel run
// equals the sum of the per-probe shards reported in the trace — every
// probe, including canceled ones, delivers its partial statistics
// exactly once.
func TestParallelMergedNodesMatchTraceShards(t *testing.T) {
	in := loadBench(t, "instances/de.json")
	var buf bytes.Buffer
	opt := &Options{Workers: 8, SkipBounds: true, SkipHeuristic: true, Trace: NewTracer(&buf)}
	res, err := MinimizeChip(in, 6, opt)
	if err != nil {
		t.Fatal(err)
	}
	if res.Nodes == 0 {
		t.Fatal("search-only run reported no nodes")
	}
	var shardSum int64
	probes := 0
	for _, line := range bytes.Split(buf.Bytes(), []byte("\n")) {
		if len(line) == 0 {
			continue
		}
		var ev struct {
			Ev    string  `json:"ev"`
			Nodes float64 `json:"nodes"`
		}
		if err := json.Unmarshal(line, &ev); err != nil {
			t.Fatalf("bad trace line %q: %v", line, err)
		}
		if ev.Ev == "opp_end" {
			probes++
			shardSum += int64(ev.Nodes)
		}
	}
	if shardSum != res.Nodes {
		t.Fatalf("merged nodes %d != sum of %d trace shards %d", res.Nodes, probes, shardSum)
	}
}

// TestMinimizeChipCtxCancellation checks the public cancellation
// contract: a dead context yields context.Canceled plus a partial
// result, promptly.
func TestMinimizeChipCtxCancellation(t *testing.T) {
	in := loadBench(t, "instances/de.json")
	for _, workers := range []int{1, 8} {
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		start := time.Now()
		res, err := MinimizeChipCtx(ctx, in, 6, &Options{Workers: workers})
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("workers=%d: err = %v, want context.Canceled", workers, err)
		}
		if res == nil || res.Decision != Unknown {
			t.Fatalf("workers=%d: partial result = %+v", workers, res)
		}
		if elapsed := time.Since(start); elapsed > 5*time.Second {
			t.Fatalf("workers=%d: cancellation took %v", workers, elapsed)
		}
	}
}
